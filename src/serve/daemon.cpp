#include "serve/daemon.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/param_map.hpp"
#include "obs/span.hpp"
#include "scenario/scenario.hpp"
#include "serve/protocol.hpp"
#include "sim/report.hpp"

namespace rdcn::serve {

namespace {

/// Reader-side line cap: a client streaming bytes without a newline is
/// malformed (or malicious); past this the connection is refused instead
/// of growing the buffer without bound.
constexpr std::size_t kMaxLineBytes = 1u << 20;

/// CHECKPOINT lines retained per run for ATTACH replay.  An attacher that
/// missed more than this sees a gap — the ring bounds daemon memory, the
/// RESULT payload is never gapped.
constexpr std::size_t kCheckpointRing = 128;

/// Terminal tasks retained for late ATTACH (state=done replay).
constexpr std::size_t kRecentRuns = 256;

/// Write end of the self-pipe, the only state a signal handler may touch.
std::atomic<int> g_signal_pipe_wr{-1};

void drain_signal_handler(int) {
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd < 0) return;
  const char byte = 's';
  // The pipe is non-blocking; a full pipe just coalesces signals.
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
}

/// Builds the sockaddr for `path`; throws SpecError when it doesn't fit
/// sun_path (a hard AF_UNIX limit, typically 108 bytes).
sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw SpecError("socket path '" + path + "' is empty or longer than " +
                    std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Spec problems the registries can't see but that would trip asserts
/// deeper down (checkpoint_grid needs requests >= checkpoints >= 1).
void check_run_shape(const scenario::ScenarioSpec& spec) {
  if (spec.racks < 2) throw SpecError("racks must be at least 2");
  if (spec.requests == 0) throw SpecError("requests must be positive");
  if (spec.checkpoints == 0) throw SpecError("checkpoints must be positive");
  if (spec.requests < spec.checkpoints)
    throw SpecError("requests (" + std::to_string(spec.requests) +
                    ") must be >= checkpoints (" +
                    std::to_string(spec.checkpoints) + ")");
}

}  // namespace

/// One client socket.  The reader thread owns recv; any thread may write
/// (executor progress lines interleave with command replies), serialized
/// by write_mu so lines never shear.  A failed send marks the connection
/// broken — future sends become no-ops and in-flight runs for this client
/// get cancelled at their next checkpoint.
struct Daemon::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void send_line(const std::string& line) { send_raw(line + "\n"); }

  /// One atomic write unit: concurrent writers (command replies, other
  /// runs' progress lines) can't interleave inside it.  Fault points
  /// simulate a slow consumer (stall), a peer disconnect (drop), and a
  /// torn send (short_write) — the latter two leave the connection broken
  /// exactly like the real failures they stand in for.
  void send_raw(const std::string& bytes) {
    const std::lock_guard<std::mutex> lock(write_mu);
    if (broken.load(std::memory_order_relaxed)) return;
    if (fault::fire("serve.send.stall"))
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    if (fault::fire("serve.send.drop")) {
      broken.store(true, std::memory_order_relaxed);
      shutdown_socket();
      return;
    }
    std::size_t limit = bytes.size();
    if (fault::fire("serve.send.short_write") && limit > 1) limit /= 2;
    std::size_t sent = 0;
    while (sent < limit) {
      const ssize_t n = ::send(fd, bytes.data() + sent, limit - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        broken.store(true, std::memory_order_relaxed);
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (limit < bytes.size()) {
      // Injected short write: line framing on this socket is gone for
      // good, so the connection is broken from here on.
      broken.store(true, std::memory_order_relaxed);
      shutdown_socket();
    }
  }

  /// Wakes a reader blocked in recv (used by stop()).
  void shutdown_socket() { ::shutdown(fd, SHUT_RDWR); }

  const int fd;
  std::mutex write_mu;
  std::atomic<bool> broken{false};
  /// HELLO binding: later RUNs on this connection charge this client's
  /// quota and fairness lane ("" = anonymous).  Only the connection's own
  /// reader thread touches it (HELLO and RUN share that thread).
  std::string client;
};

/// An admitted run: travels from queue_ to an executor; active_ keeps it
/// addressable by id for CANCEL/ATTACH until its DONE line is out, then
/// recent_ keeps it (subscriber-free) for late attachers.
struct Daemon::RunTask {
  std::uint64_t id = 0;
  scenario::ScenarioSpec spec;
  std::string canonical;
  CancelToken cancel = CancelToken::make();
  /// Set by the watchdog before firing `cancel`, so the terminal DONE
  /// distinguishes deadline_exceeded from a client CANCEL.
  std::atomic<bool> deadline_fired{false};
  std::atomic<bool> started{false};  ///< an executor picked it up
  /// Set by the progress watchdog before firing `cancel` (takes priority
  /// over deadline_fired in the terminal decision).
  std::atomic<bool> stalled_fired{false};
  /// Re-enqueued from the journal after a restart: has no submitter, so
  /// an empty subscriber list must not auto-cancel it.
  bool recovered = false;
  std::uint64_t admitted_ns = 0;  ///< queue entry (admission-wait metric)
  std::string client = "anon";    ///< fairness lane / quota identity
  int priority = 1;               ///< shed order under brownout (0-2)
  std::uint64_t cost = 1;         ///< estimated cost units (DRR charge)
  /// Last time this run demonstrated progress (pickup or a checkpoint);
  /// the progress watchdog cancels a run whose value goes stale.
  std::atomic<std::uint64_t> last_progress_ns{0};

  /// One stream consumer.  `from` filters live/replayed CHECKPOINTs (an
  /// ATTACH from=<k> resumer already saw seq < k — relevant after a
  /// restart, when a recovered run re-emits its checkpoints from seq 1);
  /// RESULT/DONE/ERROR always go out.
  struct Subscriber {
    std::shared_ptr<Connection> conn;
    std::uint64_t from = 1;
  };
  /// Subscriber/checkpoint state.  Lock order: mu_ may be held when
  /// taking sub_mu, NEVER the reverse.
  std::mutex sub_mu;
  std::vector<Subscriber> subscribers;  ///< cleared at the terminal line
  /// Last kCheckpointRing CHECKPOINT lines by seq, for ATTACH replay.
  std::deque<std::pair<std::uint64_t, std::string>> ring;
  std::uint64_t next_seq = 1;   ///< next checkpoint seq to assign
  std::string terminal_status;  ///< "" until terminal; then ok|...|error
};

Daemon::Metrics::Metrics(obs::Registry& r)
    : runs_ok(r.counter("rdcn_serve_runs_total", "Runs by terminal status",
                        {{"status", "ok"}})),
      runs_cancelled(r.counter("rdcn_serve_runs_total",
                               "Runs by terminal status",
                               {{"status", "cancelled"}})),
      runs_deadline(r.counter("rdcn_serve_runs_total",
                              "Runs by terminal status",
                              {{"status", "deadline_exceeded"}})),
      runs_stalled(r.counter("rdcn_serve_runs_total",
                             "Runs by terminal status",
                             {{"status", "stalled"}})),
      runs_error(r.counter("rdcn_serve_runs_total", "Runs by terminal status",
                           {{"status", "error"}})),
      crashes(r.counter("rdcn_serve_crashes_total",
                        "Executor crashes (non-SpecError escapes)")),
      rejected(r.counter("rdcn_serve_rejected_total",
                         "Submissions refused with REJECT backpressure")),
      shed(r.counter("rdcn_serve_shed_total",
                     "Submissions dropped by brownout load shedding")),
      quarantined(r.counter("rdcn_serve_quarantined_total",
                            "Submissions fast-failed as quarantined")),
      recovered(r.counter("rdcn_runs_recovered_total",
                          "Journalled runs re-enqueued after a restart")),
      attach_total(r.counter("rdcn_attach_total",
                             "Successful ATTACH subscriptions")),
      queue_depth(r.gauge("rdcn_serve_queue_depth",
                          "Runs waiting for an executor")),
      active_runs(r.gauge("rdcn_serve_active_runs",
                          "Runs currently executing")),
      brownout_level(r.gauge("rdcn_serve_brownout_level",
                             "Current load-shedding level (0 = healthy)")),
      admission_wait(r.latency_histogram(
          "rdcn_serve_admission_wait_seconds",
          "Admission-to-executor-pickup queue latency")),
      queue_wait_p0(r.latency_histogram(
          "rdcn_serve_queue_wait_seconds",
          "Admission-to-pickup queue latency by priority",
          {{"priority", "0"}})),
      queue_wait_p1(r.latency_histogram(
          "rdcn_serve_queue_wait_seconds",
          "Admission-to-pickup queue latency by priority",
          {{"priority", "1"}})),
      queue_wait_p2(r.latency_histogram(
          "rdcn_serve_queue_wait_seconds",
          "Admission-to-pickup queue latency by priority",
          {{"priority", "2"}})),
      run_ok(r.latency_histogram("rdcn_serve_run_seconds",
                                 "Executor run latency by terminal status",
                                 {{"status", "ok"}})),
      run_cancelled(r.latency_histogram(
          "rdcn_serve_run_seconds",
          "Executor run latency by terminal status",
          {{"status", "cancelled"}})),
      run_deadline(r.latency_histogram(
          "rdcn_serve_run_seconds",
          "Executor run latency by terminal status",
          {{"status", "deadline_exceeded"}})),
      run_stalled(r.latency_histogram(
          "rdcn_serve_run_seconds",
          "Executor run latency by terminal status",
          {{"status", "stalled"}})),
      run_error(r.latency_histogram("rdcn_serve_run_seconds",
                                    "Executor run latency by terminal status",
                                    {{"status", "error"}})),
      drain_seconds(r.latency_histogram("rdcn_serve_drain_seconds",
                                        "Graceful-drain duration")) {}

Daemon::Daemon(ServeOptions options)
    : options_(std::move(options)),
      m_(obs_),
      cache_(options_.cache_entries, &obs_),
      disk_cache_(options_.disk_cache_dir, &obs_),
      journal_(options_.journal_dir, &obs_),
      queue_(options_.drr_quantum),
      brownout_(options_.queue_limit, options_.max_rss_mb * (1ull << 20)) {}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  // Fault points configured for this daemon (tests, incident repro); the
  // env hook lets a spawned daemon be armed from outside.
  fault::arm_from_spec(options_.faults);
  fault::arm_from_env();
  // Fault firings count into the process registry; register the serving
  // stack's known points eagerly so a METRICS scrape always exposes the
  // family, zeros included.
  obs::install_fault_observer();
  for (const char* point :
       {"serve.send.short_write", "serve.send.drop", "serve.send.stall",
        "serve.admit.reject", "serve.executor.crash", "serve.executor.stall",
        "serve.disk_cache.torn_write", "serve.disk_cache.write_fail"}) {
    obs::Registry::global().counter(
        "rdcn_fault_fires_total",
        "Fault-injection point firings (common/fault.hpp)",
        {{"point", point}});
  }
  // A serving process is long-lived and observable by design: phase
  // traces are on so --metrics-dump snapshots carry per-phase time.
  obs::set_tracing(true);
  // Quotas resolve once, before any admission: the --quota-* defaults,
  // optionally overridden per client by the quota file.  A malformed file
  // fails startup (SpecError) — silently unlimited tenants are worse.
  {
    QuotaSpec defaults;
    defaults.rps = options_.quota_rps;
    defaults.burst = options_.quota_burst;
    defaults.concurrent = options_.quota_concurrent;
    quotas_ = options_.quota_file.empty()
                  ? QuotaTable(defaults)
                  : QuotaTable::parse_file(options_.quota_file, defaults);
  }
  // Journal recovery runs before the socket goes live: the restored id
  // counter, quarantine streaks, and re-enqueued runs are all in place
  // before the first client can connect (ATTACH by a pre-crash id works
  // immediately).
  const Journal::Recovery recovered = journal_.recover(next_id_);
  next_id_ = recovered.next_id;
  for (const auto& [spec, streak] : recovered.quarantine)
    crash_streaks_[spec] = CrashStreak{streak, monotonic_now_ns()};
  for (const Journal::RecoveredRun& run : recovered.incomplete) {
    auto task = std::make_shared<RunTask>();
    task->id = run.id;
    task->recovered = true;
    task->canonical = run.spec;
    task->client = run.client;
    task->priority = run.priority;
    try {
      task->spec = scenario::ScenarioSpec::parse(run.spec);
      task->spec.threads = options_.threads;
      task->cost = estimate_cost(task->spec.resolved());
    } catch (const std::exception& e) {
      // Journalled by an incompatible build: end the run rather than die.
      std::cerr << "rdcn_serve: journal: dropping unparseable recovered run "
                << run.id << ": " << e.what() << "\n";
      journal_.terminal(run.id, "error");
      continue;
    }
    task->admitted_ns = monotonic_now_ns();
    // Recovered runs re-enter their original fairness lane and re-charge
    // their client's concurrent-run quota, exactly as if freshly admitted.
    client_state_locked(task->client).inflight += 1;
    queue_.push(task->client, task->cost, task);
    m_.queue_depth.add(1);
    active_.emplace(run.id, std::move(task));
    m_.recovered.inc();
  }
  const sockaddr_un addr = make_address(options_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw SpecError(std::string("socket() failed: ") + std::strerror(errno));
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw SpecError("cannot listen on '" + options_.socket_path +
                    "': " + why);
  }
  if (options_.handle_signals) {
    if (::pipe(signal_pipe_) != 0) {
      const std::string why = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw SpecError("cannot create signal pipe: " + why);
    }
    // Non-blocking write end: the handler must never block; a full pipe
    // just coalesces repeated signals into the one pending drain.
    ::fcntl(signal_pipe_[1], F_SETFL, O_NONBLOCK);
    g_signal_pipe_wr.store(signal_pipe_[1], std::memory_order_relaxed);
    struct sigaction sa {};
    sa.sa_handler = &drain_signal_handler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, &old_term_);
    ::sigaction(SIGINT, &sa, &old_int_);
    signal_thread_ = std::thread(&Daemon::signal_loop, this);
  }
  started_ = true;
  accept_thread_ = std::thread(&Daemon::accept_loop, this);
  watchdog_thread_ = std::thread(&Daemon::watchdog_loop, this);
  if (!options_.metrics_dump_path.empty())
    metrics_thread_ = std::thread(&Daemon::metrics_dump_loop, this);
  for (std::size_t i = 0; i < options_.executors; ++i)
    executors_.emplace_back(&Daemon::executor_loop, this);
}

void Daemon::stop() {
  if (!started_ || stopping_.exchange(true)) {
    stopping_ = true;
    cv_shutdown_.notify_all();
    return;
  }
  // Unblock accept(), then every blocked reader, executor, and the
  // watchdog; cancel all queued/running work so executors drain fast.
  ::shutdown(listen_fd_, SHUT_RDWR);
  std::vector<std::shared_ptr<Connection>> conns;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, task] : active_) task->cancel.request_cancel();
    conns = conns_;
  }
  for (auto& conn : conns) conn->shutdown_socket();
  cv_exec_.notify_all();
  cv_deadline_.notify_all();
  cv_metrics_.notify_all();
  cv_drain_.notify_all();
  accept_thread_.join();
  watchdog_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  // accept_loop has exited, so conn_threads_ is final now.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->shutdown_socket();
  }
  for (std::thread& t : conn_threads_) t.join();
  for (std::thread& t : executors_) t.join();
  if (signal_thread_.joinable()) {
    // Restore dispositions first so a signal during teardown behaves
    // default; then tell the loop to exit via its own pipe.
    g_signal_pipe_wr.store(-1, std::memory_order_relaxed);
    ::sigaction(SIGTERM, &old_term_, nullptr);
    ::sigaction(SIGINT, &old_int_, nullptr);
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(signal_pipe_[1], &byte, 1);
    signal_thread_.join();
    ::close(signal_pipe_[0]);
    ::close(signal_pipe_[1]);
    signal_pipe_[0] = signal_pipe_[1] = -1;
  }
  // Reader and signal threads are joined, so nobody can start a new
  // drain; an in-flight drain_loop exits promptly on stopping_.
  if (drain_thread_.joinable()) drain_thread_.join();
  journal_.flush();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  cv_shutdown_.notify_all();
}

void Daemon::wait_for_shutdown_command() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_shutdown_.wait(lock, [&] { return shutdown_requested_ || stopping_; });
}

Daemon::ClientState& Daemon::client_state_locked(const std::string& client) {
  const auto it = clients_.find(client);
  if (it != clients_.end()) return it->second;
  const QuotaSpec& quota = quotas_.lookup(client);
  return clients_
      .emplace(client,
               ClientState{
                   TokenBucket(quota.rps, quota.effective_burst()),
                   0,
                   obs_.counter("rdcn_serve_client_admitted_total",
                                "Admitted runs by client",
                                {{"client", client}}),
                   obs_.counter("rdcn_serve_client_rejected_total",
                                "REJECTed submissions by client "
                                "(queue_full + quota)",
                                {{"client", client}}),
                   obs_.counter("rdcn_serve_client_shed_total",
                                "Brownout-shed submissions by client",
                                {{"client", client}}),
               })
      .first->second;
}

int Daemon::update_brownout_locked() {
  const std::uint64_t now_ns = monotonic_now_ns();
  if (options_.max_rss_mb > 0 &&
      (rss_sampled_ns_ == 0 || now_ns - rss_sampled_ns_ > 100'000'000ull)) {
    rss_bytes_ = read_rss_bytes();
    rss_sampled_ns_ = now_ns;
  }
  const int level = brownout_.update(queue_.size(), rss_bytes_);
  m_.brownout_level.set(static_cast<double>(level));
  return level;
}

std::uint32_t Daemon::reject_retry_ms_locked() const {
  return drain_est_.retry_ms(queue_.size(),
                             std::max<std::size_t>(1, options_.executors),
                             options_.retry_hint_ms);
}

StatsReport Daemon::stats_report() const {
  // Every field reads the metrics registry — the counters the executors
  // bump are the counters STATS reports; nothing here can drift.  mu_ is
  // taken so a client that read DONE sees its run counted (terminal
  // bumps happen under mu_ before the DONE line goes out).
  StatsReport r;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    r.active = static_cast<std::size_t>(m_.active_runs.value());
    r.queued = static_cast<std::size_t>(m_.queue_depth.value());
    r.completed = m_.runs_ok.value();
    r.cancelled = m_.runs_cancelled.value();
    r.deadline_exceeded = m_.runs_deadline.value();
    r.crashed = m_.crashes.value();
    r.rejected = m_.rejected.value();
    r.quarantined = m_.quarantined.value();
    r.recovered = m_.recovered.value();
    r.attached = m_.attach_total.value();
    r.shed = m_.shed.value();
    r.stalled = m_.runs_stalled.value();
    r.brownout = static_cast<std::size_t>(brownout_.level());
    r.clients = clients_.size();
  }
  const ResultsCache::Stats cache = cache_.stats();
  r.cache_hits = cache.hits;
  r.cache_misses = cache.misses;
  r.cache_entries = cache.entries;
  const DiskCache::Stats disk = disk_cache_.stats();
  r.disk_hits = disk.hits;
  r.disk_corrupt = disk.corrupt_skipped;
  return r;
}

std::string Daemon::metrics_text() const {
  return obs_.render_prometheus() +
         obs::Registry::global().render_prometheus();
}

void Daemon::write_metrics_dump() const {
  const std::string temp = options_.metrics_dump_path + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc);
    out << "{\"serve\":" << obs_.render_json()
        << ",\"process\":" << obs::Registry::global().render_json()
        << ",\"trace\":" << obs::trace_json() << "}\n";
    if (!out) {
      std::cerr << "rdcn_serve: cannot write metrics dump " << temp << "\n";
      return;
    }
  }
  if (std::rename(temp.c_str(), options_.metrics_dump_path.c_str()) != 0)
    std::cerr << "rdcn_serve: cannot commit metrics dump "
              << options_.metrics_dump_path << "\n";
}

void Daemon::metrics_dump_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_metrics_.wait_for(
        lock, std::chrono::milliseconds(
                  std::max<std::uint64_t>(1, options_.metrics_dump_ms)));
    lock.unlock();
    write_metrics_dump();  // rendering takes registry mutexes, not mu_
    lock.lock();
  }
  lock.unlock();
  write_metrics_dump();  // final snapshot so short runs aren't lost
}

void Daemon::signal_loop() {
  char byte = 0;
  while (true) {
    const ssize_t n = ::read(signal_pipe_[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || byte == 'q') return;  // stop() says goodbye
    begin_drain();
  }
}

void Daemon::begin_drain() {
  if (drain_requested_.exchange(true)) return;  // one drain per lifetime
  const std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  drain_thread_ = std::thread(&Daemon::drain_loop, this);
}

void Daemon::drain_loop() {
  const std::uint64_t begin_ns = monotonic_now_ns();
  const auto idle = [&] { return active_.empty() || stopping_.load(); };
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_drain_.wait_for(lock, std::chrono::milliseconds(options_.drain_ms),
                       idle);
    // Budget spent: stragglers get a cooperative cancel, then a bounded
    // second wait — a wedged run (or executors=0) must not hold the
    // shutdown hostage forever.
    for (auto& [id, task] : active_) task->cancel.request_cancel();
    cv_exec_.notify_all();
    cv_drain_.wait_for(lock, std::chrono::milliseconds(1000), idle);
  }
  journal_.flush();
  m_.drain_seconds.observe_ns(monotonic_now_ns() - begin_ns);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
  }
  cv_shutdown_.notify_all();
}

void Daemon::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_ || errno != EINTR) return;
      continue;
    }
    // Bounded recv timeout so readers notice stopping_ even if their
    // socket shutdown races with thread startup.
    timeval tv{};
    tv.tv_usec = 200 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    auto conn = std::make_shared<Connection>(fd);
    const std::lock_guard<std::mutex> lock(mu_);
    reap_finished_readers_locked();
    conns_.push_back(conn);
    // The reader drops its own reference before idling unjoined, so the
    // client's fd closes as soon as the last in-flight run lets go — not
    // at the next accept (when the thread object is reaped).
    conn_threads_.emplace_back([this, c = std::move(conn)]() mutable {
      const std::shared_ptr<Connection> local = std::move(c);
      connection_loop(local);
    });
  }
}

void Daemon::connection_loop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while (open && (pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) open = handle_command(conn, line);
    }
    if (open && buffer.size() > kMaxLineBytes) {
      // A newline-free stream past the cap: refuse and hang up rather
      // than buffering without limit.
      conn->send_line(msg_error("reason=line_too_long limit_bytes=" +
                                std::to_string(kMaxLineBytes)));
      break;
    }
  }
  conn->broken.store(true, std::memory_order_relaxed);
  conn->shutdown_socket();
  // Unsubscribe this client everywhere, drop the daemon's reference to
  // the connection (the fd closes once the last in-flight task lets go),
  // and queue this thread for reaping so a long-lived daemon doesn't
  // accumulate dead readers.  A run left subscriber-less is cancelled to
  // free its executor — unless a journal is armed (the run is durable and
  // re-attachable: it finishes and its result lands in the caches) or the
  // run was recovered (it never had a submitter to lose).
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, task] : active_) {
    const std::lock_guard<std::mutex> sub_lock(task->sub_mu);
    std::erase_if(task->subscribers,
                  [&](const RunTask::Subscriber& s) { return s.conn == conn; });
    if (task->subscribers.empty() && !task->recovered && !journal_.enabled())
      task->cancel.request_cancel();
  }
  std::erase(conns_, conn);
  finished_readers_.push_back(std::this_thread::get_id());
}

void Daemon::reap_finished_readers_locked() {
  for (const std::thread::id id : finished_readers_) {
    for (auto it = conn_threads_.begin(); it != conn_threads_.end(); ++it) {
      if (it->get_id() != id) continue;
      it->join();  // the thread already reached its final statement
      conn_threads_.erase(it);
      break;
    }
  }
  finished_readers_.clear();
}

bool Daemon::handle_command(const std::shared_ptr<Connection>& conn,
                            const std::string& line) {
  const Command cmd = parse_command(line);
  switch (cmd.kind) {
    case Command::Kind::kPing:
      conn->send_line(msg_pong());
      return true;
    case Command::Kind::kHello:
      // Rebinding mid-connection is allowed (a proxy serving several
      // tenants reuses one socket); only later RUNs are affected.
      conn->client = cmd.client;
      conn->send_line(msg_welcome(cmd.client));
      return true;
    case Command::Kind::kReset: {
      // Operator verb: clear quarantine/crash-streak state without a
      // restart.  Journalled (streak 0) so a crash right after the RESET
      // doesn't resurrect the streaks.
      std::size_t cleared = 0;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (cmd.all) {
          cleared = crash_streaks_.size();
          for (const auto& [spec, streak] : crash_streaks_)
            journal_.quarantine_streak(spec, 0);
          crash_streaks_.clear();
        } else {
          const auto it = crash_streaks_.find(cmd.spec);
          if (it != crash_streaks_.end()) {
            journal_.quarantine_streak(it->first, 0);
            crash_streaks_.erase(it);
            cleared = 1;
          }
        }
      }
      conn->send_line(msg_resetok(cleared));
      return true;
    }
    case Command::Kind::kRun:
      handle_run(conn, cmd);
      return true;
    case Command::Kind::kCancel: {
      CancelToken token;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = active_.find(cmd.id);
        if (it != active_.end()) token = it->second->cancel;
      }
      if (!token.cancellable()) {
        conn->send_line(msg_error("no queued or running run with id " +
                                  std::to_string(cmd.id)));
      } else {
        // Ack BEFORE firing the token: the executor's DONE is a
        // consequence of the cancel, so sending the ack first keeps
        // CANCELLING-before-DONE ordering on the wire (collect() consumes
        // the ack; a DONE that overtook it would leave the ack behind to
        // poison the next command's reply).
        conn->send_line(msg_cancelling(cmd.id));
        token.request_cancel();
      }
      return true;
    }
    case Command::Kind::kAttach:
      handle_attach(conn, cmd);
      return true;
    case Command::Kind::kStats:
      conn->send_line(msg_stats(stats_report()));
      return true;
    case Command::Kind::kMetrics: {
      // Header + exposition travel as one write unit (like RESULT) so no
      // other run's lines can land inside the payload.
      const std::string text = metrics_text();
      std::size_t lines = 0;
      for (const char c : text)
        if (c == '\n') ++lines;
      conn->send_raw(msg_metrics(lines) + "\n" + text);
      return true;
    }
    case Command::Kind::kShutdown: {
      conn->send_line(msg_bye());
      if (cmd.drain) {
        // Graceful: the drain thread flips shutdown_requested_ once
        // in-flight runs finished (or the drain budget expired).
        begin_drain();
        return false;
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      cv_shutdown_.notify_all();
      return false;
    }
    case Command::Kind::kInvalid:
      conn->send_line(msg_error(cmd.error));
      return true;
  }
  return true;
}

void Daemon::handle_run(const std::shared_ptr<Connection>& conn,
                        const Command& cmd) {
  scenario::ScenarioSpec spec;
  std::string canonical;
  std::uint64_t cost = 1;
  try {
    spec = scenario::ScenarioSpec::parse(cmd.spec);
    const scenario::ScenarioSpec resolved = spec.resolved();
    scenario::TopologyRegistry::instance().validate(resolved.topology);
    scenario::WorkloadRegistry::instance().validate(resolved.workload);
    for (const Spec& algorithm : resolved.algorithms)
      scenario::AlgorithmRegistry::instance().validate(algorithm);
    check_run_shape(resolved);
    spec.threads = options_.threads;  // execution detail, daemon's choice
    canonical = spec.canonical_string();
    cost = estimate_cost(resolved);
  } catch (const std::exception& e) {
    conn->send_line(msg_error(e.what()));
    return;
  }
  // RUN client= (a proxy submitting for a tenant) overrides the
  // connection's HELLO binding; neither means the anonymous pool.
  const std::string client = !cmd.client.empty()   ? cmd.client
                             : !conn->client.empty() ? conn->client
                                                     : "anon";

  // Quarantine: a spec that keeps crashing executors is fast-failed at
  // admission instead of being given another executor to wedge.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // A draining daemon finishes what it has; new work belongs to the
      // next instance.
      conn->send_line(msg_error("reason=draining daemon is shutting down"));
      return;
    }
    const auto it = crash_streaks_.find(canonical);
    if (options_.quarantine_threshold > 0 && it != crash_streaks_.end()) {
      // TTL aging: a streak untouched for quarantine_ttl_s no longer
      // predicts anything — drop it (journalled) and give the spec a
      // fresh chance.
      if (options_.quarantine_ttl_s > 0 &&
          monotonic_now_ns() - it->second.touched_ns >
              options_.quarantine_ttl_s * 1'000'000'000ull) {
        journal_.quarantine_streak(it->first, 0);
        crash_streaks_.erase(it);
      } else if (it->second.count >= options_.quarantine_threshold) {
        m_.quarantined.inc();
        conn->send_line(msg_error(
            "reason=quarantined consecutive_failures=" +
            std::to_string(it->second.count) +
            " spec is quarantined after repeated executor crashes"));
        return;
      }
    }
  }

  // Injected admission failure: exercises the client's REJECT/backoff
  // path without actually filling the queue.
  if (fault::fire("serve.admit.reject")) {
    std::uint32_t retry = options_.retry_hint_ms;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      m_.rejected.inc();
      client_state_locked(client).rejected.inc();
      retry = reject_retry_ms_locked();
    }
    conn->send_line(msg_reject(retry));
    return;
  }

  std::uint64_t id;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
  }

  // A cache hit bypasses admission entirely — replaying stored bytes is
  // cheap, so cached runs are never rejected for backpressure.  The
  // in-memory LRU is consulted first, then the persistent store (which a
  // restarted daemon repopulates the LRU from).
  std::optional<std::string> payload = cache_.get(canonical);
  if (!payload) {
    payload = disk_cache_.get(canonical);
    if (payload) cache_.put(canonical, *payload);
  }
  if (payload) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      m_.runs_ok.inc();
    }
    conn->send_line(msg_accepted(id));
    send_payload(*conn, id, /*cached=*/true, *payload);
    conn->send_line(msg_done(id, "ok"));
    return;
  }

  auto task = std::make_shared<RunTask>();
  task->id = id;
  task->spec = std::move(spec);
  task->canonical = std::move(canonical);
  task->client = client;
  task->priority = cmd.priority;
  task->cost = cost;
  task->subscribers.push_back({conn, /*from=*/1});  // unpublished: no lock
  {
    // ACCEPTED goes out under mu_ so no executor can emit this run's
    // CHECKPOINT lines first (they'd need the queue entry, which doesn't
    // exist yet).  The write is a few bytes to a local socket.
    const std::lock_guard<std::mutex> lock(mu_);
    ClientState& cs = client_state_locked(client);
    if (queue_.size() >= options_.queue_limit) {
      m_.rejected.inc();
      cs.rejected.inc();
      conn->send_line(msg_reject(reject_retry_ms_locked()));
      return;
    }
    // Per-client caps next: the concurrent-run quota (queued + running
    // charged at admission, released at the terminal) and the admission
    // token bucket.  Both refuse with reason=quota and an honest hint —
    // the drain rate for a full pipeline, the refill time for an empty
    // bucket.
    const QuotaSpec& quota = quotas_.lookup(client);
    if (quota.concurrent > 0 && cs.inflight >= quota.concurrent) {
      m_.rejected.inc();
      cs.rejected.inc();
      conn->send_line(msg_reject(reject_retry_ms_locked(), "quota"));
      return;
    }
    std::uint32_t bucket_retry = 0;
    if (!cs.bucket.try_take(monotonic_now_ns(), &bucket_retry)) {
      m_.rejected.inc();
      cs.rejected.inc();
      conn->send_line(msg_reject(bucket_retry, "quota"));
      return;
    }
    // Brownout shedding: under pressure, low-priority (and optionally
    // high-cost) submissions are dropped before the queue bound has to
    // refuse everyone.  The hint scales with the level — the hotter the
    // daemon, the longer clients should stay away.
    const int level = update_brownout_locked();
    if (level > 0 &&
        (task->priority < level ||
         (options_.shed_cost_limit > 0 && cost > options_.shed_cost_limit &&
          task->priority < 2))) {
      m_.shed.inc();
      cs.shed.inc();
      conn->send_line(msg_reject(
          reject_retry_ms_locked() * static_cast<std::uint32_t>(level + 1),
          "shed"));
      return;
    }
    // Journalled before ACCEPTED: an id the client saw is an id a
    // restarted daemon remembers.
    journal_.admitted(id, task->canonical, task->client, task->priority);
    conn->send_line(msg_accepted(id));
    cs.inflight += 1;
    cs.admitted.inc();
    task->admitted_ns = monotonic_now_ns();
    queue_.push(task->client, task->cost, task);
    m_.queue_depth.add(1);
    if (cmd.deadline_ms > 0) {
      // Deadline counts from admission: queue wait is the daemon's
      // problem, not the client's.
      deadlines_.emplace(
          monotonic_now() + std::chrono::milliseconds(cmd.deadline_ms), task);
      cv_deadline_.notify_one();
    }
    active_.emplace(id, std::move(task));
  }
  cv_exec_.notify_one();
}

void Daemon::handle_attach(const std::shared_ptr<Connection>& conn,
                           const Command& cmd) {
  std::shared_ptr<RunTask> task;
  std::string status;  ///< terminal status; "" while the run is live
  std::uint64_t last_seq = 0;
  std::vector<std::string> replay;
  bool live = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = active_.find(cmd.id);
    if (it != active_.end()) {
      task = it->second;
    } else {
      for (const auto& t : recent_)
        if (t->id == cmd.id) {
          task = t;
          break;
        }
    }
    if (task) {
      const std::lock_guard<std::mutex> sub_lock(task->sub_mu);
      status = task->terminal_status;
      last_seq = task->next_seq - 1;
      for (const auto& [seq, line] : task->ring)
        if (seq >= cmd.from) replay.push_back(line);
      if (status.empty()) {
        // Live run: ATTACHED + ring replay + subscription happen under
        // sub_mu so no concurrent checkpoint can interleave or be missed
        // between the replay and the live stream.
        live = true;
        m_.attach_total.inc();
        conn->send_line(msg_attached(
            cmd.id,
            task->started.load(std::memory_order_acquire) ? "running"
                                                          : "queued",
            last_seq));
        for (const std::string& line : replay) conn->send_line(line);
        task->subscribers.push_back({conn, cmd.from});
      }
    }
  }
  if (!task) {
    conn->send_line(
        msg_error("reason=unknown_run id=" + std::to_string(cmd.id)));
    return;
  }
  if (live) return;
  // Terminal run: its ring and status are immutable now (subscribers were
  // cleared at DONE), so the whole outcome replays from here — for ok
  // runs the payload comes from the caches.
  std::optional<std::string> payload;
  if (status == "ok") {
    payload = cache_.get(task->canonical);
    if (!payload) {
      payload = disk_cache_.get(task->canonical);
      if (payload) cache_.put(task->canonical, *payload);
    }
    if (!payload) {
      // Evicted everywhere: pretend the run is forgotten so the client
      // falls back to resubmitting (better than an ok with no bytes).
      conn->send_line(
          msg_error("reason=unknown_run id=" + std::to_string(cmd.id)));
      return;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    m_.attach_total.inc();
  }
  conn->send_line(msg_attached(cmd.id, "done", last_seq));
  for (const std::string& line : replay) conn->send_line(line);
  if (payload) send_payload(*conn, cmd.id, /*cached=*/true, *payload);
  conn->send_line(msg_done(cmd.id, status));
}

void Daemon::executor_loop() {
  while (true) {
    std::shared_ptr<RunTask> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_exec_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      queue_.pop(&task);  // DRR order: the fairest backlogged lane's head
      m_.queue_depth.add(-1);
      m_.active_runs.add(1);
    }
    task->last_progress_ns.store(monotonic_now_ns(),
                                 std::memory_order_relaxed);
    task->started.store(true, std::memory_order_release);
    journal_.started(task->id);
    const std::uint64_t wait_ns = monotonic_now_ns() - task->admitted_ns;
    m_.admission_wait.observe_ns(wait_ns);
    (task->priority == 0   ? m_.queue_wait_p0
     : task->priority == 1 ? m_.queue_wait_p1
                           : m_.queue_wait_p2)
        .observe_ns(wait_ns);
    const std::uint64_t exec_begin_ns = monotonic_now_ns();
    execute(task);
    const std::uint64_t exec_ns = monotonic_now_ns() - exec_begin_ns;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      m_.active_runs.add(-1);
      // Release the client's concurrent-run charge; this thread wrote
      // terminal_status in execute(), so reading it lock-free is safe.
      const auto cs = clients_.find(task->client);
      if (cs != clients_.end() && cs->second.inflight > 0)
        cs->second.inflight -= 1;
      // Only full executions inform the drain estimate — a run cancelled
      // (or shed) in milliseconds says nothing about how long a queue
      // slot takes to free under load.
      if (task->terminal_status == "ok" || task->terminal_status == "error")
        drain_est_.observe_run_ns(exec_ns);
      active_.erase(task->id);
      recent_.push_back(task);
      if (recent_.size() > kRecentRuns) recent_.pop_front();
    }
    cv_drain_.notify_all();
  }
}

void Daemon::execute(const std::shared_ptr<RunTask>& task) {
  const std::uint64_t start_ns = monotonic_now_ns();
  // The run's single terminal transition.  Order matters: outcome
  // counters were already bumped under mu_ (a client that reads DONE and
  // immediately asks STATS must see its run counted) and the journal's
  // terminal record is fsync'd BEFORE any wire byte — a DONE a client saw
  // is a DONE a restarted daemon remembers.  Then, under sub_mu, the
  // final lines go to every subscriber and the subscriber list is
  // dropped: a finished task must not keep client fds open, and ATTACH
  // observes terminal_status to replay the outcome instead of joining.
  const auto finish = [&](const std::string& status,
                          const std::string* error_line,
                          const std::string* payload, bool cached) {
    journal_.terminal(task->id, status);
    const std::lock_guard<std::mutex> sub_lock(task->sub_mu);
    task->terminal_status = status;
    for (const auto& sub : task->subscribers) {
      if (error_line != nullptr) sub.conn->send_line(*error_line);
      if (payload != nullptr) send_payload(*sub.conn, task->id, cached,
                                           *payload);
      sub.conn->send_line(msg_done(task->id, status));
    }
    task->subscribers.clear();
  };
  // Ends the run with DONE status stalled/deadline_exceeded/cancelled,
  // whichever the token firing meant.  A stall (the progress watchdog
  // fired) also extends the spec's crash streak: a spec that reliably
  // wedges executors is as dangerous as one that crashes them.
  const auto finish_cancelled = [&] {
    const bool stalled = task->stalled_fired.load(std::memory_order_acquire);
    const bool deadline =
        !stalled && task->deadline_fired.load(std::memory_order_acquire);
    std::size_t streak = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stalled) {
        m_.runs_stalled.inc();
        CrashStreak& s = crash_streaks_[task->canonical];
        streak = ++s.count;
        s.touched_ns = monotonic_now_ns();
        if (options_.quarantine_threshold > 0 &&
            streak == options_.quarantine_threshold)
          std::cerr << "rdcn_serve: quarantining spec after " << streak
                    << " consecutive failures: " << task->canonical << "\n";
      } else if (deadline) {
        m_.runs_deadline.inc();
      } else {
        m_.runs_cancelled.inc();
      }
    }
    if (stalled) journal_.quarantine_streak(task->canonical, streak);
    (stalled    ? m_.run_stalled
     : deadline ? m_.run_deadline
                : m_.run_cancelled)
        .observe_ns(monotonic_now_ns() - start_ns);
    finish(stalled    ? "stalled"
           : deadline ? "deadline_exceeded"
                      : "cancelled",
           nullptr, nullptr, false);
  };
  // Non-SpecError escaped the run (a bug, or an injected crash): report,
  // count, and extend the spec's crash streak — the executor survives.
  const auto finish_crashed = [&](const std::string& what) {
    std::size_t streak = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      m_.crashes.inc();
      m_.runs_error.inc();
      CrashStreak& s = crash_streaks_[task->canonical];
      streak = ++s.count;
      s.touched_ns = monotonic_now_ns();
      if (options_.quarantine_threshold > 0 &&
          streak == options_.quarantine_threshold)
        std::cerr << "rdcn_serve: quarantining spec after " << streak
                  << " consecutive crashes: " << task->canonical << "\n";
    }
    journal_.quarantine_streak(task->canonical, streak);
    m_.run_error.observe_ns(monotonic_now_ns() - start_ns);
    const std::string error_line = msg_error("internal=" + what);
    finish("error", &error_line, nullptr, false);
  };
  const auto finish_ok = [&](const std::string& payload, bool cached) {
    bool streak_cleared = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      m_.runs_ok.inc();
      streak_cleared = crash_streaks_.erase(task->canonical) > 0;
    }
    if (streak_cleared) journal_.quarantine_streak(task->canonical, 0);
    m_.run_ok.observe_ns(monotonic_now_ns() - start_ns);
    finish("ok", nullptr, &payload, cached);
  };

  if (task->cancel.cancelled()) {  // cancelled while still queued
    finish_cancelled();
    return;
  }
  if (task->recovered) {
    // The pre-crash run may have finished with its terminal record lost
    // (the caches commit before the journal's fsync'd done record);
    // serve the stored bytes instead of recomputing.
    std::optional<std::string> payload = cache_.get(task->canonical);
    if (!payload) {
      payload = disk_cache_.get(task->canonical);
      if (payload) cache_.put(task->canonical, *payload);
    }
    if (payload) {
      finish_ok(*payload, /*cached=*/true);
      return;
    }
  }
  scenario::RunHooks hooks;
  hooks.cancel = task->cancel;
  const bool durable = journal_.enabled();
  hooks.on_checkpoint = [this, task, durable](const std::string& label,
                                              std::uint64_t seed,
                                              const sim::Checkpoint&
                                                  checkpoint) {
    task->last_progress_ns.store(monotonic_now_ns(),
                                 std::memory_order_relaxed);
    std::uint64_t seq = 0;
    {
      const std::lock_guard<std::mutex> sub_lock(task->sub_mu);
      seq = task->next_seq++;
      std::string line =
          msg_checkpoint(task->id, seq, label, seed, checkpoint);
      for (const auto& sub : task->subscribers)
        if (seq >= sub.from) sub.conn->send_line(line);
      std::erase_if(task->subscribers, [](const RunTask::Subscriber& s) {
        return s.conn->broken.load(std::memory_order_relaxed);
      });
      task->ring.emplace_back(seq, std::move(line));
      if (task->ring.size() > kCheckpointRing) task->ring.pop_front();
      // Nobody is listening: without a journal the run's output has no
      // future, so stop burning CPU; with one the run is re-attachable
      // and its result durable — let it finish.
      if (task->subscribers.empty() && !task->recovered && !durable)
        task->cancel.request_cancel();
    }
    journal_.checkpoint(task->id, seq);
  };
  try {
    if (fault::fire("serve.executor.crash"))
      throw std::runtime_error("injected executor crash");
    if (fault::fire("serve.executor.stall")) {
      // Simulated wedge: no checkpoints ever come, so only the progress
      // watchdog (or a CANCEL/deadline) can end this run.  The wait is
      // cooperative — the executor thread itself never deadlocks.
      while (!task->cancel.cancelled())
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      throw CancelledError("stalled run cancelled");
    }
    const scenario::ScenarioResult result =
        scenario::run_scenario(task->spec, hooks);
    std::ostringstream csv;
    sim::write_csv(csv, result.runs, sim::Metric::kRoutingCost);
    const std::string payload = csv.str();
    cache_.put(task->canonical, payload);
    disk_cache_.put(task->canonical, payload);
    finish_ok(payload, /*cached=*/false);
  } catch (const CancelledError&) {
    finish_cancelled();
  } catch (const SpecError& e) {
    // A spec problem the admission-time validators couldn't see — a
    // refusal, not a crash: no streak, no quarantine.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      m_.runs_error.inc();
    }
    m_.run_error.observe_ns(monotonic_now_ns() - start_ns);
    const std::string error_line = msg_error(e.what());
    finish("error", &error_line, nullptr, false);
  } catch (const std::exception& e) {
    finish_crashed(e.what());
  } catch (...) {
    finish_crashed("unknown exception");
  }
}

void Daemon::watchdog_loop() {
  // Besides per-run deadlines, the watchdog owns two periodic duties:
  // the progress monitor (cancel running tasks whose checkpoint stream
  // went quiet) and the brownout re-evaluation (so the level *recovers*
  // even when no admission arrives to trigger an update).  Either one
  // turns the indefinite deadline wait into a bounded tick.
  const bool progress = options_.progress_timeout_ms > 0;
  const bool ticking = progress || options_.max_rss_mb > 0;
  const auto tick = std::chrono::milliseconds(
      progress ? std::clamp<std::uint64_t>(options_.progress_timeout_ms / 4,
                                           10, 1000)
               : 250);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (deadlines_.empty() && !ticking) {
      cv_deadline_.wait(lock);
      continue;
    }
    auto wake = monotonic_now() + tick;
    if (!deadlines_.empty() && deadlines_.begin()->first < wake)
      wake = deadlines_.begin()->first;
    if (monotonic_now() < wake) {
      // Re-evaluate after the wait: an earlier deadline may have been
      // armed, or stop() may have been requested.
      cv_deadline_.wait_until(lock, wake);
      if (stopping_) break;
    }
    const auto now = monotonic_now();
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
      if (const std::shared_ptr<RunTask> task =
              deadlines_.begin()->second.lock()) {
        // Mark before firing so the executor's CancelledError handler
        // reads the right reason.  Firing after completion is harmless —
        // the token is dead weight once DONE is out.
        task->deadline_fired.store(true, std::memory_order_release);
        task->cancel.request_cancel();
      }
      deadlines_.erase(deadlines_.begin());
    }
    if (!ticking) continue;
    update_brownout_locked();
    if (!progress) continue;
    const std::uint64_t budget_ns =
        options_.progress_timeout_ms * 1'000'000ull;
    const std::uint64_t now_ns = monotonic_now_ns();
    for (auto& [id, task] : active_) {
      if (!task->started.load(std::memory_order_acquire)) continue;
      const std::uint64_t last =
          task->last_progress_ns.load(std::memory_order_relaxed);
      if (last == 0 || now_ns - last <= budget_ns) continue;
      // Mark-then-fire, like the deadline path.  exchange() makes the
      // stall fire once even if the run lingers across several ticks.
      if (!task->stalled_fired.exchange(true, std::memory_order_acq_rel))
        task->cancel.request_cancel();
    }
  }
}

void Daemon::send_payload(Connection& conn, std::uint64_t id, bool cached,
                          const std::string& payload) {
  std::size_t lines = 0;
  for (const char c : payload)
    if (c == '\n') ++lines;
  // Header and payload travel as one write unit so no other run's lines
  // can land between them; the payload is already newline-framed CSV and
  // ships verbatim, bit-identical to a direct rdcn_sim --csv run.
  conn.send_raw(msg_result(id, cached, lines) + "\n" + payload);
}

}  // namespace rdcn::serve
