#include "serve/disk_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/param_map.hpp"
#include "obs/span.hpp"

namespace rdcn::serve {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'R', 'D', 'C', '1'};
constexpr const char* kEntrySuffix = ".rdc";
constexpr const char* kTempSuffix = ".tmp";
/// Entries above this are implausible (a CSV table is kilobytes) and
/// rejected before any allocation — a corrupt length field must not make
/// load() try to slurp 4 GB.
constexpr std::uint32_t kMaxPartBytes = 64u << 20;

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string to_hex(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, value >>= 4) out[i] = kDigits[value & 0xf];
  return out;
}

void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(char((value >> (8 * i)) & 0xff));
}

std::uint32_t read_u32(const std::string& bytes, std::size_t pos) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i)
    value = (value << 8) |
            static_cast<unsigned char>(bytes[pos + static_cast<size_t>(i)]);
  return value;
}

/// Serialized entry bytes for key+payload (the full file contents).
std::string encode_entry(const std::string& key, const std::string& payload) {
  std::string out;
  out.reserve(12 + key.size() + payload.size() + 4);
  out.append(kMagic, sizeof(kMagic));
  append_u32(out, static_cast<std::uint32_t>(key.size()));
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += key;
  out += payload;
  std::uint32_t crc = crc32(key.data(), key.size());
  crc = crc32(payload.data(), payload.size(), crc);
  append_u32(out, crc);
  return out;
}

/// Validates one serialized entry; on success fills key/payload.
bool decode_entry(const std::string& bytes, std::string& key,
                  std::string& payload) {
  if (bytes.size() < 16) return false;
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    return false;
  const std::uint32_t key_len = read_u32(bytes, 4);
  const std::uint32_t payload_len = read_u32(bytes, 8);
  if (key_len > kMaxPartBytes || payload_len > kMaxPartBytes) return false;
  const std::uint64_t expected_size =
      12ull + key_len + payload_len + 4ull;
  if (bytes.size() != expected_size) return false;
  key = bytes.substr(12, key_len);
  payload = bytes.substr(12 + key_len, payload_len);
  std::uint32_t crc = crc32(key.data(), key.size());
  crc = crc32(payload.data(), payload.size(), crc);
  return crc == read_u32(bytes, 12 + key_len + payload_len);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

}  // namespace

DiskCache::DiskCache(std::string directory, obs::Registry* registry)
    : directory_(std::move(directory)),
      own_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                        : nullptr),
      hits_((registry != nullptr ? *registry : *own_registry_)
                .counter("rdcn_serve_disk_cache_hits_total",
                         "On-disk results-cache hits")),
      misses_((registry != nullptr ? *registry : *own_registry_)
                  .counter("rdcn_serve_disk_cache_misses_total",
                           "On-disk results-cache misses")),
      corrupt_skipped_((registry != nullptr ? *registry : *own_registry_)
                           .counter("rdcn_serve_disk_cache_corrupt_total",
                                    "Torn/corrupt disk entries skipped")),
      write_failures_((registry != nullptr ? *registry : *own_registry_)
                          .counter("rdcn_serve_disk_cache_write_failures_total",
                                   "Disk-cache writes dropped on error")),
      entries_((registry != nullptr ? *registry : *own_registry_)
                   .gauge("rdcn_serve_disk_cache_entries",
                          "Valid disk-cache entries indexed")),
      read_bytes_((registry != nullptr ? *registry : *own_registry_)
                      .counter("rdcn_serve_disk_io_bytes_total",
                               "Disk-cache bytes moved", {{"op", "read"}})),
      write_bytes_((registry != nullptr ? *registry : *own_registry_)
                       .counter("rdcn_serve_disk_io_bytes_total",
                                "Disk-cache bytes moved", {{"op", "write"}})),
      read_seconds_((registry != nullptr ? *registry : *own_registry_)
                        .latency_histogram("rdcn_serve_disk_io_seconds",
                                           "Disk-cache I/O latency",
                                           {{"op", "read"}})),
      write_seconds_((registry != nullptr ? *registry : *own_registry_)
                         .latency_histogram("rdcn_serve_disk_io_seconds",
                                            "Disk-cache I/O latency",
                                            {{"op", "write"}})) {
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec)
    throw SpecError("cannot create disk-cache directory '" + directory_ +
                    "': " + ec.message());
  load();
}

void DiskCache::load() {
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(directory_, ec)) {
    const std::string path = item.path().string();
    const std::string name = item.path().filename().string();
    if (!item.is_regular_file(ec)) continue;
    if (name.size() >= 4 &&
        name.compare(name.size() - 4, 4, kTempSuffix) == 0) {
      // A crash between temp-write and rename; never visible, just litter.
      fs::remove(item.path(), ec);
      continue;
    }
    if (name.size() < 4 || name.compare(name.size() - 4, 4, kEntrySuffix) != 0)
      continue;  // not ours
    const std::optional<std::string> bytes = read_file(path);
    std::string key, payload;
    if (!bytes || !decode_entry(*bytes, key, payload)) {
      std::cerr << "rdcn_serve: disk cache: skipping corrupt entry " << path
                << "\n";
      corrupt_skipped_.inc();
      fs::remove(item.path(), ec);
      continue;
    }
    index_.emplace(std::move(key), path);
  }
  entries_.set(static_cast<std::int64_t>(index_.size()));
}

std::string DiskCache::entry_path(const std::string& key) const {
  return directory_ + "/" + to_hex(fnv1a64(key)) + kEntrySuffix;
}

std::optional<std::string> DiskCache::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  const obs::ObsSpan span("serve.disk_cache.load");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.inc();
    return std::nullopt;
  }
  const std::uint64_t begin_ns = monotonic_now_ns();
  const std::optional<std::string> bytes = read_file(it->second);
  read_seconds_.observe_ns(monotonic_now_ns() - begin_ns);
  if (bytes) read_bytes_.add(bytes->size());
  std::string stored_key, payload;
  if (!bytes || !decode_entry(*bytes, stored_key, payload) ||
      stored_key != key) {
    // Rotted underneath us since load(); drop it rather than serve junk.
    std::cerr << "rdcn_serve: disk cache: skipping corrupt entry "
              << it->second << "\n";
    corrupt_skipped_.inc();
    std::error_code ec;
    fs::remove(it->second, ec);
    index_.erase(it);
    entries_.set(static_cast<std::int64_t>(index_.size()));
    misses_.inc();
    return std::nullopt;
  }
  hits_.inc();
  return payload;
}

void DiskCache::put(const std::string& key, const std::string& payload) {
  if (!enabled()) return;
  const obs::ObsSpan span("serve.disk_cache.store");
  const std::lock_guard<std::mutex> lock(mu_);
  if (fault::fire("serve.disk_cache.write_fail")) {
    write_failures_.inc();
    return;
  }
  const std::string path = entry_path(key);
  const std::string temp = path + kTempSuffix;
  std::string bytes = encode_entry(key, payload);
  // Torn-write fault: commit only a prefix, as if the rename landed but
  // the data never fully hit disk — exactly the corruption load() and
  // get() must survive.
  if (fault::fire("serve.disk_cache.torn_write"))
    bytes.resize(bytes.size() / 2);
  const std::uint64_t begin_ns = monotonic_now_ns();
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::cerr << "rdcn_serve: disk cache: cannot write " << temp << "\n";
      write_failures_.inc();
      std::error_code ec;
      fs::remove(temp, ec);
      return;
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::cerr << "rdcn_serve: disk cache: cannot commit " << path << "\n";
    write_failures_.inc();
    std::error_code ec;
    fs::remove(temp, ec);
    return;
  }
  write_seconds_.observe_ns(monotonic_now_ns() - begin_ns);
  write_bytes_.add(bytes.size());
  index_.insert_or_assign(key, path);
  entries_.set(static_cast<std::int64_t>(index_.size()));
}

DiskCache::Stats DiskCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_.value(), misses_.value(), corrupt_skipped_.value(),
               write_failures_.value(), index_.size()};
}

}  // namespace rdcn::serve
