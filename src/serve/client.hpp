// rdcn: blocking line-protocol client for the rdcn_serve daemon.
//
// Thin and synchronous by design — one connection, one in-flight run at a
// time: submit() sends RUN and reads the admission verdict; collect()
// then consumes that run's CHECKPOINT stream, RESULT payload, and DONE
// line.  Used by the rdcn_serve_client binary, the e2e smoke check, and
// the serve test suite; also a readable reference for writing clients in
// other languages.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace rdcn::serve {

class Client {
 public:
  Client() = default;
  ~Client();  ///< closes the connection

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon's AF_UNIX socket, retrying (the daemon may
  /// still be binding) until `timeout_ms` elapses.  Throws SpecError on
  /// failure.
  void connect(const std::string& socket_path, int timeout_ms = 10'000);

  bool connected() const noexcept { return fd_ >= 0; }
  void disconnect();

  /// PING/PONG round-trip; throws SpecError on anything else.
  void ping();

  /// Admission verdict for one RUN submission.  Exactly one of
  /// accepted/rejected is set unless the spec was refused (error text).
  struct Submission {
    std::uint64_t id = 0;
    bool accepted = false;
    bool rejected = false;        ///< backpressure: queue full
    std::uint32_t retry_ms = 0;   ///< suggested resubmit delay when rejected
    std::string error;            ///< non-empty when the spec was refused
  };
  Submission submit(const std::string& spec);

  /// Everything after admission, up to the run's DONE line.
  struct RunOutput {
    std::string status;        ///< "ok" | "cancelled" | "error"
    bool cached = false;       ///< payload replayed from the results cache
    std::string csv;           ///< CSV payload (empty unless status "ok")
    std::size_t checkpoints = 0;  ///< progress lines seen
    std::string error;         ///< ERROR text when status "error"
  };
  /// Reads run `id` to completion.  `on_checkpoint` (optional) sees each
  /// raw CHECKPOINT line as it streams in.
  RunOutput collect(std::uint64_t id,
                    const std::function<void(const std::string& line)>&
                        on_checkpoint = {});

  /// Requests cancellation of a queued or running run.  Returns true when
  /// the daemon acknowledged (CANCELLING); false when the id was unknown.
  /// The run itself still terminates through collect() with status
  /// "cancelled" — cancellation is cooperative, not instant.
  bool cancel(std::uint64_t id);

  /// The daemon's one-line STATS report, verbatim.
  std::string stats();

  /// Sends SHUTDOWN and waits for BYE.  The daemon finishes tearing down
  /// after the socket closes.
  void shutdown_daemon();

  // Low-level access (used by tests to speak the protocol directly).
  void send_line(const std::string& line);
  std::string read_line();  ///< throws SpecError on EOF/timeout

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received beyond the last full line
};

}  // namespace rdcn::serve
