// rdcn: blocking line-protocol client for the rdcn_serve daemon.
//
// Thin and synchronous by design — one connection, one in-flight run at a
// time: submit() sends RUN and reads the admission verdict; collect()
// then consumes that run's CHECKPOINT stream, RESULT payload, and DONE
// line.  run_scenario() wraps the pair in a bounded retry loop: REJECT
// backpressure is honored (server retry hint + exponential backoff with
// deterministic jitter) and transient disconnects are survived by
// reconnecting and ATTACHing to the run by its ACCEPTED id — the daemon
// replays missed checkpoints and the stream resumes where it broke.  A
// daemon that forgot the run (restart without a journal, eviction)
// answers ERROR reason=unknown_run and the client falls back to a blind
// resubmit; a run that completed server-side is then answered from the
// results cache, so no work is repeated either way.
//
// Transport failures throw TransportError, whose kind() distinguishes the
// daemon being *gone* (kEof: orderly close; kIo: hard socket error) from
// the daemon being *slow* (kTimeout: no bytes within the read timeout).
// The retry loop reconnects through the first two and rethrows the third
// — retrying against a wedged daemon would only pile up work.
//
// Used by the rdcn_serve_client binary, the e2e smoke check, and the
// serve test suites; also a readable reference for writing clients in
// other languages.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/param_map.hpp"
#include "serve/protocol.hpp"

namespace rdcn::serve {

/// A socket-level failure talking to the daemon.  Subtype of SpecError so
/// existing catch sites keep working; kind() lets retry logic react
/// differently to "daemon gone" vs "daemon slow".
class TransportError : public SpecError {
 public:
  enum class Kind {
    kEof,      ///< daemon closed the connection (orderly EOF)
    kTimeout,  ///< no bytes within the read timeout (daemon slow or hung)
    kIo,       ///< send/recv failed outright (connection reset, ...)
  };
  TransportError(Kind kind, const std::string& message)
      : SpecError(message), kind_(kind) {}
  Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

class Client {
 public:
  Client() = default;
  ~Client();  ///< closes the connection

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon's AF_UNIX socket, retrying (the daemon may
  /// still be binding) until `timeout_ms` elapses.  Throws SpecError on
  /// failure.  The path is remembered for reconnect().
  void connect(const std::string& socket_path, int timeout_ms = 10'000);

  /// Re-dials the last connect()ed socket path (run_scenario's disconnect
  /// recovery).  Throws SpecError when never connected.
  void reconnect(int timeout_ms = 10'000);

  bool connected() const noexcept { return fd_ >= 0; }
  void disconnect();

  /// PING/PONG round-trip; throws SpecError on anything else.
  void ping();

  /// HELLO handshake: binds this connection (and every reconnect made by
  /// run_scenario) to `client`'s quota and fairness lane.  Throws
  /// SpecError when the daemon refuses the name.
  void hello(const std::string& client);

  /// Priority attached to subsequent RUN submissions (0-2; default 1).
  /// Under daemon brownout, lower priorities are shed first.
  void set_priority(int priority) { priority_ = priority; }

  /// Admission verdict for one RUN submission.  Exactly one of
  /// accepted/rejected is set unless the spec was refused (error text).
  struct Submission {
    std::uint64_t id = 0;
    bool accepted = false;
    bool rejected = false;        ///< backpressure (see reason)
    std::uint32_t retry_ms = 0;   ///< suggested resubmit delay when rejected
    std::string reason;           ///< "queue_full" | "quota" | "shed"
    std::string error;            ///< non-empty when the spec was refused
  };
  /// `deadline_ms` > 0 asks the daemon to abandon the run (DONE
  /// status=deadline_exceeded) that many milliseconds after admission.
  Submission submit(const std::string& spec, std::uint64_t deadline_ms = 0);

  /// Everything after admission, up to the run's DONE line.
  struct RunOutput {
    std::string status;     ///< "ok" | "cancelled" | "deadline_exceeded"
                            ///< | "stalled" | "error"
    bool cached = false;    ///< payload replayed from the results cache
    std::string csv;        ///< CSV payload (empty unless status "ok")
    std::size_t checkpoints = 0;  ///< progress lines seen
    std::string error;      ///< ERROR text when status "error"
    std::size_t attempts = 1;  ///< run_scenario: submissions made in total
  };
  /// Reads run `id` to completion.  `on_checkpoint` (optional) sees each
  /// raw CHECKPOINT line as it streams in.
  RunOutput collect(std::uint64_t id,
                    const std::function<void(const std::string& line)>&
                        on_checkpoint = {});

  /// Outcome of one ATTACH request.
  struct AttachResult {
    bool attached = false;
    std::string state;  ///< "queued" | "running" | "done" when attached
    std::uint64_t last_seq = 0;  ///< highest checkpoint seq emitted so far
    std::string error;  ///< refusal text (reason=unknown_run, ...)
  };
  /// Resubscribes to run `id` (same or a different connection/process;
  /// across daemon restarts when the daemon journals).  Checkpoints with
  /// seq >= `from` replay immediately; collect(id) then consumes the
  /// replayed + live stream to DONE exactly like a fresh submission.
  AttachResult attach(std::uint64_t id, std::uint64_t from = 1);

  /// Retry policy for run_scenario: attempt k (0-based) backs off
  /// max(server retry hint, base_backoff_ms·2^k) capped at
  /// max_backoff_ms, then sleeps a uniformly jittered span in
  /// [delay/2, delay] drawn from a SplitMix64 stream seeded with
  /// jitter_seed — deterministic for tests, decorrelated in a fleet.
  struct RetryPolicy {
    std::size_t max_attempts = 5;        ///< total submissions before giving up
    std::uint32_t base_backoff_ms = 50;
    std::uint32_t max_backoff_ms = 2'000;
    /// Server retry hints are honored but clamped here: a brownout-inflated
    /// hint shouldn't park a client for a minute on one REJECT.
    std::uint32_t max_retry_hint_ms = 10'000;
    std::uint64_t jitter_seed = 0;       ///< 0 = derive from this process
    int reconnect_timeout_ms = 2'000;    ///< per reconnect attempt
  };

  /// Submits `spec` and collects it to completion, retrying through
  /// REJECT backpressure and transient disconnects per `policy`.
  /// Spec refusals (ERROR before ACCEPTED) return status "error"
  /// immediately — they are permanent, retrying cannot help.  Throws
  /// TransportError(kTimeout) when the daemon goes silent mid-run, and
  /// SpecError when max_attempts is exhausted.
  RunOutput run_scenario(const std::string& spec,
                         const RetryPolicy& policy,
                         std::uint64_t deadline_ms = 0,
                         const std::function<void(const std::string& line)>&
                             on_checkpoint = {});
  RunOutput run_scenario(const std::string& spec) {
    return run_scenario(spec, RetryPolicy{});
  }

  /// Requests cancellation of a queued or running run.  Returns true when
  /// the daemon acknowledged (CANCELLING); false when the id was unknown.
  /// The run itself still terminates through collect() with status
  /// "cancelled" — cancellation is cooperative, not instant.
  bool cancel(std::uint64_t id);

  /// RESET spec=<canonical>: clears one quarantine streak.  Returns the
  /// number of streak entries cleared (0 or 1).
  std::size_t reset_quarantine(const std::string& canonical_spec);
  /// RESET all=1: clears every quarantine streak; returns how many.
  std::size_t reset_all();

  /// The daemon's one-line STATS report, verbatim.
  std::string stats();
  /// The same report parsed (serve/protocol.hpp StatsReport fields).
  StatsReport stats_report();

  /// The daemon's full metric registry as Prometheus text exposition
  /// (METRICS command): daemon counters/gauges/histograms plus the
  /// process-wide registry (pool, simulator, fault firings).
  std::string metrics();

  /// Sends SHUTDOWN and waits for BYE.  With `drain` the daemon stops
  /// admitting, finishes in-flight runs (bounded by its --drain-ms), and
  /// exits gracefully.  The daemon finishes tearing down after the
  /// socket closes.
  void shutdown_daemon(bool drain = false);

  /// Per-read silence budget before read_line throws
  /// TransportError(kTimeout).  Default 600 s — a healthy run checkpoints
  /// far more often than that.  Applies to the current connection
  /// immediately and to future (re)connects.  Tests shrink it to exercise
  /// the timeout path without waiting minutes.
  void set_read_timeout_seconds(long seconds);

  // Low-level access (used by tests to speak the protocol directly).
  void send_line(const std::string& line);
  /// Next line from the daemon.  Throws TransportError — kEof on orderly
  /// close, kTimeout on read-timeout expiry, kIo on socket errors — so
  /// callers can tell "daemon gone" from "daemon slow".
  std::string read_line();

 private:
  std::size_t reset_common(const std::string& line);
  std::string read_socket_line();  ///< read_line minus the pending_ replay

  int fd_ = -1;
  std::string buffer_;       ///< bytes received beyond the last full line
  /// Stream lines submit() read past while waiting for its admission
  /// verdict (pipelined runs' CHECKPOINT/RESULT/DONE); read_line()
  /// replays them first so collect() never misses a terminal line.
  std::deque<std::string> pending_;
  std::string socket_path_;  ///< last connect() target, for reconnect()
  std::string client_name_;  ///< hello() binding, replayed on reconnect
  int priority_ = 1;         ///< RUN priority= (1 = the wire default)
  long read_timeout_seconds_ = 600;
};

}  // namespace rdcn::serve
