#include "serve/results_cache.hpp"

namespace rdcn::serve {

ResultsCache::ResultsCache(std::size_t capacity, obs::Registry* registry)
    : capacity_(capacity),
      own_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                        : nullptr),
      hits_((registry != nullptr ? *registry : *own_registry_)
                .counter("rdcn_serve_cache_hits_total",
                         "In-memory results-cache hits")),
      misses_((registry != nullptr ? *registry : *own_registry_)
                  .counter("rdcn_serve_cache_misses_total",
                           "In-memory results-cache misses")),
      entries_((registry != nullptr ? *registry : *own_registry_)
                   .gauge("rdcn_serve_cache_entries",
                          "In-memory results-cache resident entries")) {}

std::optional<std::string> ResultsCache::get(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.inc();
    return std::nullopt;
  }
  hits_.inc();
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->second;
}

void ResultsCache::put(const std::string& key, std::string payload) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  entries_.set(static_cast<std::int64_t>(lru_.size()));
}

ResultsCache::Stats ResultsCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_.value(), misses_.value(), lru_.size()};
}

}  // namespace rdcn::serve
