#include "serve/results_cache.hpp"

namespace rdcn::serve {

std::optional<std::string> ResultsCache::get(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->second;
}

void ResultsCache::put(const std::string& key, std::string payload) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

ResultsCache::Stats ResultsCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, lru_.size()};
}

}  // namespace rdcn::serve
