// rdcn: rdcn_serve — the long-running scenario-serving daemon.
//
// Turns the spec-driven scenario layer into a service: clients connect to
// a local (AF_UNIX) stream socket, submit ScenarioSpec strings with one
// RUN line, and get back streamed CHECKPOINT progress plus the run's CSV
// table — the same bytes a direct rdcn_sim --csv run produces.  See
// serve/protocol.hpp for the wire format.
//
// Execution model:
//   * every connection gets a reader thread (commands are line-framed and
//     cheap to parse; replies may interleave across runs, attributed by id);
//   * admitted runs wait in a bounded FIFO; submissions beyond the bound
//     are rejected with a retry hint (backpressure) instead of queueing
//     unboundedly;
//   * a small executor-thread set drains the queue, each run executing
//     scenario::run_scenario on the process-wide persistent ThreadPool
//     (trial parallelism) with a CancelToken threaded down to the
//     simulator's serve-chunk loop — CANCEL stops a run within one
//     4096-request chunk and frees its executor and pool slots;
//   * completed CSV payloads land in an LRU ResultsCache keyed on
//     ScenarioSpec::canonical_string(), so an equivalent spec (params in
//     any order) is served from cache without re-running.
//
// Invalid specs — parse failures, unknown components, bad parameters —
// report as ERROR lines (SpecError text with registry suggestions); the
// daemon never dies on client input.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/results_cache.hpp"

namespace rdcn::serve {

struct ServeOptions {
  /// Filesystem path of the AF_UNIX listening socket (required).  An
  /// existing stale socket file is replaced.
  std::string socket_path;
  /// Maximum runs waiting for an executor; submissions past this get a
  /// REJECT with a retry hint.  Running runs don't count.
  std::size_t queue_limit = 16;
  /// Concurrent scenario runs.  0 is a test hook: runs are admitted and
  /// queued but never executed.
  std::size_t executors = 2;
  /// ResultsCache capacity in entries (0 disables caching).
  std::size_t cache_entries = 64;
  /// Worker threads per run's trial parallelism (0 = all cores).
  std::size_t threads = 0;
  /// Hint returned with REJECT responses.
  std::uint32_t retry_hint_ms = 200;
};

class Daemon {
 public:
  explicit Daemon(ServeOptions options);
  ~Daemon();  ///< calls stop()

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and spawns the accept + executor threads.  Throws
  /// SpecError when the socket cannot be created/bound.
  void start();

  /// Stops accepting, cancels every queued/running run, joins all
  /// threads, and removes the socket file.  Idempotent.  Must not be
  /// called from a daemon thread (a SHUTDOWN command instead *requests*
  /// shutdown; the owner observes it via wait_for_shutdown_command).
  void stop();

  /// Blocks until a client sent SHUTDOWN (or stop() was called).
  void wait_for_shutdown_command();

  const ServeOptions& options() const noexcept { return options_; }
  ResultsCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  struct Connection;
  struct RunTask;

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  /// Returns false when the connection should close (SHUTDOWN).
  bool handle_command(const std::shared_ptr<Connection>& conn,
                      const std::string& line);
  void handle_run(const std::shared_ptr<Connection>& conn,
                  const std::string& spec_text);
  void executor_loop();
  void execute(const std::shared_ptr<RunTask>& task);
  void send_payload(Connection& conn, std::uint64_t id, bool cached,
                    const std::string& payload);

  ServeOptions options_;
  ResultsCache cache_;
  int listen_fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_exec_;      ///< executors wait for work
  std::condition_variable cv_shutdown_;  ///< owner waits for SHUTDOWN
  std::deque<std::shared_ptr<RunTask>> queue_;
  /// Queued + running tasks by id (CANCEL looks up here); erased when the
  /// run reaches its DONE line.
  std::unordered_map<std::uint64_t, std::shared_ptr<RunTask>> active_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
  std::uint64_t next_id_ = 1;
  std::size_t running_ = 0;
  bool started_ = false;
  bool shutdown_requested_ = false;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> executors_;
};

}  // namespace rdcn::serve
