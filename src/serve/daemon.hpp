// rdcn: rdcn_serve — the long-running scenario-serving daemon.
//
// Turns the spec-driven scenario layer into a service: clients connect to
// a local (AF_UNIX) stream socket, submit ScenarioSpec strings with one
// RUN line, and get back streamed CHECKPOINT progress plus the run's CSV
// table — the same bytes a direct rdcn_sim --csv run produces.  See
// serve/protocol.hpp for the wire format.
//
// Execution model:
//   * every connection gets a reader thread (commands are line-framed and
//     cheap to parse; replies may interleave across runs, attributed by
//     id).  The per-connection read buffer is bounded: a newline-free
//     stream past 1 MiB gets ERROR reason=line_too_long and the
//     connection closed;
//   * admitted runs wait in a bounded deficit-round-robin queue, one lane
//     per client (HELLO client=<name> binds a connection; anonymous
//     traffic pools under "anon"), charged in estimated cost units — many
//     small scenarios interleave with one giant matrix instead of
//     queueing behind it.  Submissions beyond the bound are rejected with
//     a retry hint computed from the measured drain rate (backpressure)
//     instead of queueing unboundedly;
//   * per-client quotas (token-bucket admission rate + max concurrent
//     runs, defaults from --quota-*, per-client overrides from a quota
//     file) refuse with REJECT reason=quota and an honest retry hint
//     from the bucket refill;
//   * a hysteretic brownout state machine over queue depth and an RSS
//     watermark sheds the lowest-priority submissions first (RUN
//     priority=<0-2>) with REJECT reason=shed before the queue bound
//     itself has to refuse;
//   * a small executor-thread set drains the queue, each run executing
//     scenario::run_scenario on the process-wide persistent ThreadPool
//     (trial parallelism) with a CancelToken threaded down to the
//     simulator's serve-chunk loop — CANCEL stops a run within one
//     4096-request chunk and frees its executor and pool slots;
//   * RUN ... deadline_ms=<n> arms a monotonic-clock watchdog (one thread,
//     earliest-deadline wakeups): a run still going n ms after admission
//     is cancelled through the same cooperative token and reported as
//     DONE status=deadline_exceeded;
//   * the same watchdog thread doubles as a progress monitor: with
//     --progress-timeout-ms set, a running task whose checkpoint stream
//     stops advancing for that long is cancelled and reported as DONE
//     status=stalled — and the stall extends the spec's quarantine
//     streak, so a spec that reliably wedges executors gets fenced off
//     like one that crashes them;
//   * completed CSV payloads land in an LRU ResultsCache keyed on
//     ScenarioSpec::canonical_string(), and — when disk_cache_dir is set —
//     in a crash-safe on-disk store (serve/disk_cache.hpp) that survives
//     restarts: a restarted daemon serves previously completed specs with
//     cached=1, bit-identical payloads.
//
// Run lifecycle durability (journal_dir set — serve/journal.hpp):
//   * admissions, pickups, checkpoints, and terminals are journalled
//     (record-before-wire-line); a crashed daemon re-enqueues every
//     incomplete run at restart — deterministic recompute, results land
//     in the caches — and restores quarantine streaks and the id counter;
//   * every run keeps a bounded ring of its CHECKPOINT lines and a
//     subscriber list: ATTACH <id> [from=<k>] (from any connection, any
//     process, before or after a daemon restart) replays the missed
//     checkpoints and joins the live stream;
//   * a run with a journal armed outlives its submitter: a disconnected
//     client orphans the run but it finishes (re-attachable, cacheable).
//     Without a journal the old policy stands — an orphaned run is
//     cancelled at its next checkpoint to free the executor;
//   * SIGTERM/SIGINT (when handle_signals — self-pipe, async-signal-safe)
//     and SHUTDOWN drain=1 begin a graceful drain: admissions refuse with
//     ERROR reason=draining, in-flight runs get drain_ms to finish, then
//     stragglers are cancelled cooperatively, the journal and caches are
//     flushed, and wait_for_shutdown_command() returns.
//
// Failure containment:
//   * invalid specs — parse failures, unknown components, bad parameters —
//     report as ERROR lines (SpecError text with registry suggestions);
//     the daemon never dies on client input;
//   * any non-SpecError escaping a run (a bug, an injected crash) is
//     caught and reported as ERROR internal=<what> + DONE status=error;
//     the executor thread survives.  A spec that crashes
//     quarantine_threshold times consecutively is quarantined: further
//     submissions fast-fail with ERROR reason=quarantined instead of
//     re-wedging executors (a later success would clear the streak).
//     Streaks age out after quarantine_ttl_s of quiet (0 = never), and an
//     operator can clear them without a restart via RESET spec=<canonical>
//     or RESET all=1;
//   * every outcome is counted and visible through STATS (completed /
//     cancelled / deadline_exceeded / crashed / rejected / quarantined /
//     disk-cache hits / corrupt entries skipped);
//   * the common/fault.hpp injection points wrapped around socket sends,
//     admission, executor launch, and disk-cache writes let tests force
//     each of these paths deterministically (arm via ServeOptions::faults
//     or the RDCN_FAULTS environment variable); unarmed they cost one
//     relaxed atomic load.
#pragma once

#include <signal.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/disk_cache.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/results_cache.hpp"

namespace rdcn::serve {

struct ServeOptions {
  /// Filesystem path of the AF_UNIX listening socket (required).  An
  /// existing stale socket file is replaced.
  std::string socket_path;
  /// Maximum runs waiting for an executor; submissions past this get a
  /// REJECT with a retry hint.  Running runs don't count.
  std::size_t queue_limit = 16;
  /// Concurrent scenario runs.  0 is a test hook: runs are admitted and
  /// queued but never executed.
  std::size_t executors = 2;
  /// ResultsCache capacity in entries (0 disables caching).
  std::size_t cache_entries = 64;
  /// Directory of the persistent on-disk results cache ("" disables).
  /// Created if missing; corrupt entries are skipped at startup.
  std::string disk_cache_dir;
  /// Directory of the write-ahead run journal ("" disables).  With a
  /// journal, queued/running runs survive a daemon crash: at restart they
  /// are re-enqueued (deterministic recompute), quarantine streaks are
  /// restored, and run ids stay stable so ATTACH works across restarts.
  std::string journal_dir;
  /// Milliseconds a graceful drain (signal or SHUTDOWN drain=1) waits for
  /// in-flight runs before cancelling the stragglers cooperatively.
  std::uint64_t drain_ms = 5000;
  /// Install SIGTERM/SIGINT handlers (self-pipe trick) that trigger a
  /// graceful drain.  Off by default: embedding processes and tests own
  /// their signal dispositions; rdcn_serve's main() turns it on.
  bool handle_signals = false;
  /// Worker threads per run's trial parallelism (0 = all cores).
  std::size_t threads = 0;
  /// Hint returned with REJECT responses.
  std::uint32_t retry_hint_ms = 200;
  /// Consecutive executor crashes of one canonical spec before it is
  /// quarantined (submissions fast-fail).  0 disables quarantining.
  std::size_t quarantine_threshold = 3;
  /// Seconds of quiet after which a crash streak ages out (an old flaky
  /// spec gets a fresh chance without an operator RESET).  0 = never.
  std::uint64_t quarantine_ttl_s = 0;
  /// Default per-client admission rate in runs/s (0 = unlimited) and
  /// token-bucket burst (0 derives max(1, 2·rps)).
  double quota_rps = 0;
  double quota_burst = 0;
  /// Default per-client concurrent (queued+running) run cap (0 = none).
  std::size_t quota_concurrent = 0;
  /// Per-client quota overrides (admission.hpp QuotaTable file format);
  /// "" = the --quota-* defaults apply to everyone.
  std::string quota_file;
  /// RSS watermark in MiB for brownout load shedding (0 disables the RSS
  /// leg; queue depth still drives levels).
  std::uint64_t max_rss_mb = 0;
  /// Under brownout (level >= 1), also shed submissions whose estimated
  /// cost exceeds this many units unless they are priority 2 (0 = no
  /// cost-based shedding).
  std::uint64_t shed_cost_limit = 0;
  /// Cancel a *running* task whose checkpoint stream hasn't advanced in
  /// this long: DONE status=stalled.  0 disables the progress watchdog.
  std::uint64_t progress_timeout_ms = 0;
  /// DRR credit (cost units) each backlogged client earns per round.
  std::uint64_t drr_quantum = 4096;
  /// Fault-injection spec armed at start() (fault::arm_from_spec syntax);
  /// "" arms nothing.  RDCN_FAULTS in the environment is applied too.
  std::string faults;
  /// When non-empty, a snapshot thread writes the full metric registry
  /// (plus the merged trace tree) as JSON to this file every
  /// metrics_dump_ms, atomically (temp-file + rename), and once more at
  /// stop().
  std::string metrics_dump_path;
  std::uint64_t metrics_dump_ms = 1000;
};

class Daemon {
 public:
  explicit Daemon(ServeOptions options);
  ~Daemon();  ///< calls stop()

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket, loads the disk cache, arms configured faults, and
  /// spawns the accept + watchdog + executor threads.  Throws SpecError
  /// when the socket cannot be created/bound.
  void start();

  /// Stops accepting, cancels every queued/running run, joins all
  /// threads, and removes the socket file.  Idempotent.  Must not be
  /// called from a daemon thread (a SHUTDOWN command instead *requests*
  /// shutdown; the owner observes it via wait_for_shutdown_command).
  void stop();

  /// Blocks until a client sent SHUTDOWN (or stop() was called).
  void wait_for_shutdown_command();

  const ServeOptions& options() const noexcept { return options_; }
  ResultsCache::Stats cache_stats() const { return cache_.stats(); }
  DiskCache::Stats disk_cache_stats() const { return disk_cache_.stats(); }
  /// The same snapshot a STATS command reports — assembled from the
  /// metrics registry, the single source of truth for every counter.
  StatsReport stats_report() const;
  /// This daemon's metric registry (admission, runs, caches).  Process-
  /// wide metrics (pool, simulator, faults) are in obs::Registry::global().
  const obs::Registry& metrics() const noexcept { return obs_; }
  /// Prometheus text exposition: daemon registry + process registry, the
  /// exact bytes a METRICS command returns.
  std::string metrics_text() const;

 private:
  struct Connection;
  struct RunTask;

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  /// Returns false when the connection should close (SHUTDOWN).
  bool handle_command(const std::shared_ptr<Connection>& conn,
                      const std::string& line);
  void handle_run(const std::shared_ptr<Connection>& conn,
                  const Command& cmd);
  void handle_attach(const std::shared_ptr<Connection>& conn,
                     const Command& cmd);
  /// Starts the graceful drain exactly once (signal, SHUTDOWN drain=1).
  void begin_drain();
  void drain_loop();
  void signal_loop();
  void executor_loop();
  void execute(const std::shared_ptr<RunTask>& task);
  void watchdog_loop();
  void metrics_dump_loop();
  void write_metrics_dump() const;
  /// Joins reader threads listed in finished_readers_ (caller holds mu_).
  void reap_finished_readers_locked();
  void send_payload(Connection& conn, std::uint64_t id, bool cached,
                    const std::string& payload);

  ServeOptions options_;
  /// Per-instance registry: declared before the caches so their counters
  /// can register here; a fresh daemon starts every counter at zero even
  /// when several daemons run sequentially in one (test) process.
  obs::Registry obs_;
  /// Handles into obs_, resolved once at construction so record sites
  /// are single relaxed adds.  Terminal-outcome counters are bumped
  /// under mu_ BEFORE the DONE line goes out (see execute()).
  struct Metrics {
    explicit Metrics(obs::Registry& r);
    obs::Counter& runs_ok;        ///< DONE status=ok (cache hits included)
    obs::Counter& runs_cancelled;
    obs::Counter& runs_deadline;
    obs::Counter& runs_stalled;   ///< DONE status=stalled (progress watchdog)
    obs::Counter& runs_error;     ///< DONE status=error (crash or SpecError)
    obs::Counter& crashes;        ///< non-SpecError escapes (subset of error)
    obs::Counter& rejected;       ///< REJECT reason=queue_full|quota
    obs::Counter& shed;           ///< REJECT reason=shed (disjoint from ^)
    obs::Counter& quarantined;
    obs::Counter& recovered;      ///< runs re-enqueued from the journal
    obs::Counter& attach_total;   ///< successful ATTACH subscriptions
    obs::Gauge& queue_depth;
    obs::Gauge& active_runs;
    obs::Gauge& brownout_level;      ///< current shedding level (0-2)
    obs::Histogram& admission_wait;  ///< admission -> executor pickup
    obs::Histogram& queue_wait_p0;   ///< the same wait, split by priority
    obs::Histogram& queue_wait_p1;
    obs::Histogram& queue_wait_p2;
    obs::Histogram& run_ok;          ///< executor run latency by status
    obs::Histogram& run_cancelled;
    obs::Histogram& run_deadline;
    obs::Histogram& run_stalled;
    obs::Histogram& run_error;
    obs::Histogram& drain_seconds;   ///< graceful-drain duration
  } m_;
  ResultsCache cache_;
  DiskCache disk_cache_;
  Journal journal_;
  int listen_fd_ = -1;

  /// One client's admission state (lazily created at first submission;
  /// never dropped — the set of distinct clients is operator-bounded).
  /// Guarded by mu_, like everything around it.
  struct ClientState {
    TokenBucket bucket;
    std::size_t inflight = 0;  ///< queued + running runs charged here
    obs::Counter& admitted;
    obs::Counter& rejected;
    obs::Counter& shed;
  };
  ClientState& client_state_locked(const std::string& client);
  /// Re-evaluates the brownout level from queue depth + RSS (the RSS
  /// sample is cached ~100 ms — /proc reads are not free) and mirrors it
  /// into the gauge.  Returns the level.  Caller holds mu_.
  int update_brownout_locked();
  /// Drain-rate retry hint for a REJECT issued now.  Caller holds mu_.
  std::uint32_t reject_retry_ms_locked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_exec_;      ///< executors wait for work
  std::condition_variable cv_shutdown_;  ///< owner waits for SHUTDOWN
  std::condition_variable cv_deadline_;  ///< watchdog waits for deadlines
  DrrQueue<std::shared_ptr<RunTask>> queue_;
  std::map<std::string, ClientState> clients_;
  QuotaTable quotas_;          ///< immutable after start()
  Brownout brownout_;
  DrainEstimator drain_est_;
  std::uint64_t rss_bytes_ = 0;       ///< cached read_rss_bytes()
  std::uint64_t rss_sampled_ns_ = 0;  ///< when rss_bytes_ was sampled
  /// Queued + running tasks by id (CANCEL looks up here); erased when the
  /// run reaches its DONE line.
  std::unordered_map<std::uint64_t, std::shared_ptr<RunTask>> active_;
  /// Recently finished tasks, oldest first (bounded): ATTACH to a run
  /// that just completed replays its checkpoint ring and terminal from
  /// here.  Terminal tasks hold no Connection refs (subscribers are
  /// cleared at DONE), so this retains no client fds.
  std::deque<std::shared_ptr<RunTask>> recent_;
  /// Armed deadlines, earliest first; entries for finished runs expire
  /// harmlessly (weak_ptr).
  std::multimap<MonotonicClock::time_point, std::weak_ptr<RunTask>>
      deadlines_;
  /// canonical spec → consecutive executor crashes/stalls (cleared on
  /// success, by RESET, or after quarantine_ttl_s of quiet).
  struct CrashStreak {
    std::size_t count = 0;
    std::uint64_t touched_ns = 0;  ///< last extension (TTL aging)
  };
  std::unordered_map<std::string, CrashStreak> crash_streaks_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
  /// Reader threads that have exited (disconnected clients); their ids
  /// wait here until accept_loop/stop() joins them, so neither thread
  /// handles nor Connection fds accumulate over the daemon's lifetime.
  std::vector<std::thread::id> finished_readers_;
  std::uint64_t next_id_ = 1;
  bool started_ = false;
  bool shutdown_requested_ = false;
  /// Admissions refuse with ERROR reason=draining while the drain thread
  /// waits for in-flight runs (guarded by mu_).
  bool draining_ = false;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> drain_requested_{false};
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::thread metrics_thread_;
  std::thread drain_thread_;
  std::thread signal_thread_;
  int signal_pipe_[2] = {-1, -1};  ///< self-pipe: handler writes, loop reads
  struct sigaction old_term_ {};
  struct sigaction old_int_ {};
  std::condition_variable cv_metrics_;  ///< wakes the dump thread at stop
  std::condition_variable cv_drain_;    ///< drain waits for active_ empty
  std::vector<std::thread> executors_;
};

}  // namespace rdcn::serve
