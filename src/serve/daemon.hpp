// rdcn: rdcn_serve — the long-running scenario-serving daemon.
//
// Turns the spec-driven scenario layer into a service: clients connect to
// a local (AF_UNIX) stream socket, submit ScenarioSpec strings with one
// RUN line, and get back streamed CHECKPOINT progress plus the run's CSV
// table — the same bytes a direct rdcn_sim --csv run produces.  See
// serve/protocol.hpp for the wire format.
//
// Execution model:
//   * every connection gets a reader thread (commands are line-framed and
//     cheap to parse; replies may interleave across runs, attributed by
//     id).  The per-connection read buffer is bounded: a newline-free
//     stream past 1 MiB gets ERROR reason=line_too_long and the
//     connection closed;
//   * admitted runs wait in a bounded FIFO; submissions beyond the bound
//     are rejected with a retry hint (backpressure) instead of queueing
//     unboundedly;
//   * a small executor-thread set drains the queue, each run executing
//     scenario::run_scenario on the process-wide persistent ThreadPool
//     (trial parallelism) with a CancelToken threaded down to the
//     simulator's serve-chunk loop — CANCEL stops a run within one
//     4096-request chunk and frees its executor and pool slots;
//   * RUN ... deadline_ms=<n> arms a monotonic-clock watchdog (one thread,
//     earliest-deadline wakeups): a run still going n ms after admission
//     is cancelled through the same cooperative token and reported as
//     DONE status=deadline_exceeded;
//   * completed CSV payloads land in an LRU ResultsCache keyed on
//     ScenarioSpec::canonical_string(), and — when disk_cache_dir is set —
//     in a crash-safe on-disk store (serve/disk_cache.hpp) that survives
//     restarts: a restarted daemon serves previously completed specs with
//     cached=1, bit-identical payloads.
//
// Run lifecycle durability (journal_dir set — serve/journal.hpp):
//   * admissions, pickups, checkpoints, and terminals are journalled
//     (record-before-wire-line); a crashed daemon re-enqueues every
//     incomplete run at restart — deterministic recompute, results land
//     in the caches — and restores quarantine streaks and the id counter;
//   * every run keeps a bounded ring of its CHECKPOINT lines and a
//     subscriber list: ATTACH <id> [from=<k>] (from any connection, any
//     process, before or after a daemon restart) replays the missed
//     checkpoints and joins the live stream;
//   * a run with a journal armed outlives its submitter: a disconnected
//     client orphans the run but it finishes (re-attachable, cacheable).
//     Without a journal the old policy stands — an orphaned run is
//     cancelled at its next checkpoint to free the executor;
//   * SIGTERM/SIGINT (when handle_signals — self-pipe, async-signal-safe)
//     and SHUTDOWN drain=1 begin a graceful drain: admissions refuse with
//     ERROR reason=draining, in-flight runs get drain_ms to finish, then
//     stragglers are cancelled cooperatively, the journal and caches are
//     flushed, and wait_for_shutdown_command() returns.
//
// Failure containment:
//   * invalid specs — parse failures, unknown components, bad parameters —
//     report as ERROR lines (SpecError text with registry suggestions);
//     the daemon never dies on client input;
//   * any non-SpecError escaping a run (a bug, an injected crash) is
//     caught and reported as ERROR internal=<what> + DONE status=error;
//     the executor thread survives.  A spec that crashes
//     quarantine_threshold times consecutively is quarantined: further
//     submissions fast-fail with ERROR reason=quarantined instead of
//     re-wedging executors (a later success would clear the streak);
//   * every outcome is counted and visible through STATS (completed /
//     cancelled / deadline_exceeded / crashed / rejected / quarantined /
//     disk-cache hits / corrupt entries skipped);
//   * the common/fault.hpp injection points wrapped around socket sends,
//     admission, executor launch, and disk-cache writes let tests force
//     each of these paths deterministically (arm via ServeOptions::faults
//     or the RDCN_FAULTS environment variable); unarmed they cost one
//     relaxed atomic load.
#pragma once

#include <signal.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/disk_cache.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/results_cache.hpp"

namespace rdcn::serve {

struct ServeOptions {
  /// Filesystem path of the AF_UNIX listening socket (required).  An
  /// existing stale socket file is replaced.
  std::string socket_path;
  /// Maximum runs waiting for an executor; submissions past this get a
  /// REJECT with a retry hint.  Running runs don't count.
  std::size_t queue_limit = 16;
  /// Concurrent scenario runs.  0 is a test hook: runs are admitted and
  /// queued but never executed.
  std::size_t executors = 2;
  /// ResultsCache capacity in entries (0 disables caching).
  std::size_t cache_entries = 64;
  /// Directory of the persistent on-disk results cache ("" disables).
  /// Created if missing; corrupt entries are skipped at startup.
  std::string disk_cache_dir;
  /// Directory of the write-ahead run journal ("" disables).  With a
  /// journal, queued/running runs survive a daemon crash: at restart they
  /// are re-enqueued (deterministic recompute), quarantine streaks are
  /// restored, and run ids stay stable so ATTACH works across restarts.
  std::string journal_dir;
  /// Milliseconds a graceful drain (signal or SHUTDOWN drain=1) waits for
  /// in-flight runs before cancelling the stragglers cooperatively.
  std::uint64_t drain_ms = 5000;
  /// Install SIGTERM/SIGINT handlers (self-pipe trick) that trigger a
  /// graceful drain.  Off by default: embedding processes and tests own
  /// their signal dispositions; rdcn_serve's main() turns it on.
  bool handle_signals = false;
  /// Worker threads per run's trial parallelism (0 = all cores).
  std::size_t threads = 0;
  /// Hint returned with REJECT responses.
  std::uint32_t retry_hint_ms = 200;
  /// Consecutive executor crashes of one canonical spec before it is
  /// quarantined (submissions fast-fail).  0 disables quarantining.
  std::size_t quarantine_threshold = 3;
  /// Fault-injection spec armed at start() (fault::arm_from_spec syntax);
  /// "" arms nothing.  RDCN_FAULTS in the environment is applied too.
  std::string faults;
  /// When non-empty, a snapshot thread writes the full metric registry
  /// (plus the merged trace tree) as JSON to this file every
  /// metrics_dump_ms, atomically (temp-file + rename), and once more at
  /// stop().
  std::string metrics_dump_path;
  std::uint64_t metrics_dump_ms = 1000;
};

class Daemon {
 public:
  explicit Daemon(ServeOptions options);
  ~Daemon();  ///< calls stop()

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket, loads the disk cache, arms configured faults, and
  /// spawns the accept + watchdog + executor threads.  Throws SpecError
  /// when the socket cannot be created/bound.
  void start();

  /// Stops accepting, cancels every queued/running run, joins all
  /// threads, and removes the socket file.  Idempotent.  Must not be
  /// called from a daemon thread (a SHUTDOWN command instead *requests*
  /// shutdown; the owner observes it via wait_for_shutdown_command).
  void stop();

  /// Blocks until a client sent SHUTDOWN (or stop() was called).
  void wait_for_shutdown_command();

  const ServeOptions& options() const noexcept { return options_; }
  ResultsCache::Stats cache_stats() const { return cache_.stats(); }
  DiskCache::Stats disk_cache_stats() const { return disk_cache_.stats(); }
  /// The same snapshot a STATS command reports — assembled from the
  /// metrics registry, the single source of truth for every counter.
  StatsReport stats_report() const;
  /// This daemon's metric registry (admission, runs, caches).  Process-
  /// wide metrics (pool, simulator, faults) are in obs::Registry::global().
  const obs::Registry& metrics() const noexcept { return obs_; }
  /// Prometheus text exposition: daemon registry + process registry, the
  /// exact bytes a METRICS command returns.
  std::string metrics_text() const;

 private:
  struct Connection;
  struct RunTask;

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  /// Returns false when the connection should close (SHUTDOWN).
  bool handle_command(const std::shared_ptr<Connection>& conn,
                      const std::string& line);
  void handle_run(const std::shared_ptr<Connection>& conn,
                  const Command& cmd);
  void handle_attach(const std::shared_ptr<Connection>& conn,
                     const Command& cmd);
  /// Starts the graceful drain exactly once (signal, SHUTDOWN drain=1).
  void begin_drain();
  void drain_loop();
  void signal_loop();
  void executor_loop();
  void execute(const std::shared_ptr<RunTask>& task);
  void watchdog_loop();
  void metrics_dump_loop();
  void write_metrics_dump() const;
  /// Joins reader threads listed in finished_readers_ (caller holds mu_).
  void reap_finished_readers_locked();
  void send_payload(Connection& conn, std::uint64_t id, bool cached,
                    const std::string& payload);

  ServeOptions options_;
  /// Per-instance registry: declared before the caches so their counters
  /// can register here; a fresh daemon starts every counter at zero even
  /// when several daemons run sequentially in one (test) process.
  obs::Registry obs_;
  /// Handles into obs_, resolved once at construction so record sites
  /// are single relaxed adds.  Terminal-outcome counters are bumped
  /// under mu_ BEFORE the DONE line goes out (see execute()).
  struct Metrics {
    explicit Metrics(obs::Registry& r);
    obs::Counter& runs_ok;        ///< DONE status=ok (cache hits included)
    obs::Counter& runs_cancelled;
    obs::Counter& runs_deadline;
    obs::Counter& runs_error;     ///< DONE status=error (crash or SpecError)
    obs::Counter& crashes;        ///< non-SpecError escapes (subset of error)
    obs::Counter& rejected;
    obs::Counter& quarantined;
    obs::Counter& recovered;      ///< runs re-enqueued from the journal
    obs::Counter& attach_total;   ///< successful ATTACH subscriptions
    obs::Gauge& queue_depth;
    obs::Gauge& active_runs;
    obs::Histogram& admission_wait;  ///< admission -> executor pickup
    obs::Histogram& run_ok;          ///< executor run latency by status
    obs::Histogram& run_cancelled;
    obs::Histogram& run_deadline;
    obs::Histogram& run_error;
    obs::Histogram& drain_seconds;   ///< graceful-drain duration
  } m_;
  ResultsCache cache_;
  DiskCache disk_cache_;
  Journal journal_;
  int listen_fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_exec_;      ///< executors wait for work
  std::condition_variable cv_shutdown_;  ///< owner waits for SHUTDOWN
  std::condition_variable cv_deadline_;  ///< watchdog waits for deadlines
  std::deque<std::shared_ptr<RunTask>> queue_;
  /// Queued + running tasks by id (CANCEL looks up here); erased when the
  /// run reaches its DONE line.
  std::unordered_map<std::uint64_t, std::shared_ptr<RunTask>> active_;
  /// Recently finished tasks, oldest first (bounded): ATTACH to a run
  /// that just completed replays its checkpoint ring and terminal from
  /// here.  Terminal tasks hold no Connection refs (subscribers are
  /// cleared at DONE), so this retains no client fds.
  std::deque<std::shared_ptr<RunTask>> recent_;
  /// Armed deadlines, earliest first; entries for finished runs expire
  /// harmlessly (weak_ptr).
  std::multimap<MonotonicClock::time_point, std::weak_ptr<RunTask>>
      deadlines_;
  /// canonical spec → consecutive executor crashes (cleared on success).
  std::unordered_map<std::string, std::size_t> crash_streaks_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
  /// Reader threads that have exited (disconnected clients); their ids
  /// wait here until accept_loop/stop() joins them, so neither thread
  /// handles nor Connection fds accumulate over the daemon's lifetime.
  std::vector<std::thread::id> finished_readers_;
  std::uint64_t next_id_ = 1;
  bool started_ = false;
  bool shutdown_requested_ = false;
  /// Admissions refuse with ERROR reason=draining while the drain thread
  /// waits for in-flight runs (guarded by mu_).
  bool draining_ = false;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> drain_requested_{false};
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::thread metrics_thread_;
  std::thread drain_thread_;
  std::thread signal_thread_;
  int signal_pipe_[2] = {-1, -1};  ///< self-pipe: handler writes, loop reads
  struct sigaction old_term_ {};
  struct sigaction old_int_ {};
  std::condition_variable cv_metrics_;  ///< wakes the dump thread at stop
  std::condition_variable cv_drain_;    ///< drain waits for active_ empty
  std::vector<std::thread> executors_;
};

}  // namespace rdcn::serve
