// rdcn: admission-control primitives for the serving daemon.
//
// rdcn_serve's admission path used to be one FIFO with a global bound —
// first greedy client wins, everyone else starves.  This header holds the
// pure, daemon-free building blocks of the multi-tenant replacement
// (daemon.cpp wires them together under its own mutex; every type here is
// externally synchronized and unit-testable without sockets):
//
//   TokenBucket      per-client admission *rate*: `rate` tokens/s refill
//                    up to `burst`; one RUN consumes one token.  A refusal
//                    reports an honest retry_ms derived from the refill —
//                    the earliest instant a token will actually exist.
//   QuotaTable       per-client quota config (rate, burst, max concurrent
//                    runs): a process-wide default plus overrides parsed
//                    from a quota file (`<client> rps=.. burst=..
//                    concurrent=..`, '#' comments, `default` row).
//   estimate_cost    a spec's admission-queue charge in abstract cost
//                    units: Σ over algorithms of cost_weight × trials (if
//                    randomized) × |b values| (unless b-independent) ×
//                    requests.  The registry's per-algorithm cost_weight
//                    lets offline comparators charge more than their
//                    request count suggests.
//   DrrQueue<T>      deficit round-robin fair queue across clients,
//                    charged in cost units: each backlogged client earns
//                    `quantum` credit per round, so many small scenarios
//                    interleave with one giant matrix instead of queueing
//                    behind it.  A full no-progress round advances every
//                    deficit in one closed-form step — pop() is O(active
//                    clients), never O(max cost / quantum).
//   Brownout         hysteretic overload state machine over queue depth
//                    and an RSS watermark: level 0 (healthy) admits all,
//                    level 1 sheds priority 0, level 2 sheds priority
//                    0 and 1.  Entry thresholds sit above the exit
//                    thresholds so the daemon doesn't flap at the edge.
//   DrainEstimator   EWMA of recent run durations → how long until the
//                    queue drains one slot, i.e. the honest retry hint a
//                    REJECT should carry instead of a fixed constant.
//   read_rss_bytes   this process's resident set (/proc/self/status
//                    VmRSS); 0 where unavailable, which disables the RSS
//                    watermark rather than mistriggering it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rdcn::scenario {
struct ScenarioSpec;
}

namespace rdcn::serve {

/// True for names safe on the wire and in journal records: 1–64 chars
/// from [A-Za-z0-9._-] (no spaces — client names embed in space-separated
/// protocol lines and journal payloads).
bool is_valid_client_name(const std::string& name);

/// Admission-rate limiter over the caller's monotonic clock.  rate <= 0
/// means unlimited (try_take always succeeds).  Externally synchronized.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst)
      : rate_(rate_per_s), burst_(std::max(1.0, burst)), tokens_(burst_) {}

  bool unlimited() const noexcept { return rate_ <= 0; }

  /// Consumes one token when available.  On refusal, `retry_ms` (if
  /// non-null) gets the milliseconds until the bucket will hold a full
  /// token — an honest hint, not a guess.
  bool try_take(std::uint64_t now_ns, std::uint32_t* retry_ms = nullptr);

  /// Current token count after refilling to `now_ns` (test hook).
  double tokens_at(std::uint64_t now_ns);

 private:
  void refill(std::uint64_t now_ns);

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
};

/// One client's quota. Zero fields mean "unlimited" (burst 0 derives
/// max(1, 2·rps) so a configured rate always allows a small burst).
struct QuotaSpec {
  double rps = 0;
  double burst = 0;
  std::size_t concurrent = 0;

  double effective_burst() const noexcept {
    return burst > 0 ? burst : std::max(1.0, 2.0 * rps);
  }
};

/// Immutable per-client quota configuration: a default row plus named
/// overrides.  Built once at daemon start; lookups after that are
/// read-only.
class QuotaTable {
 public:
  QuotaTable() = default;
  explicit QuotaTable(QuotaSpec default_quota)
      : default_(std::move(default_quota)) {}

  void set_override(const std::string& client, QuotaSpec quota) {
    overrides_[client] = quota;
  }

  const QuotaSpec& lookup(const std::string& client) const {
    const auto it = overrides_.find(client);
    return it != overrides_.end() ? it->second : default_;
  }

  /// Parses quota-file text.  One client per line:
  ///
  ///   # comment
  ///   default rps=2 burst=4 concurrent=8
  ///   alice   rps=100 concurrent=32
  ///
  /// `default` (or `*`) replaces the fallback row.  Throws SpecError
  /// with a line number on malformed input.  `defaults` seeds the
  /// fallback row (the daemon's --quota-* flags).
  static QuotaTable parse_text(const std::string& text,
                               const QuotaSpec& defaults);
  /// parse_text over a file's contents; throws SpecError when unreadable.
  static QuotaTable parse_file(const std::string& path,
                               const QuotaSpec& defaults);

 private:
  QuotaSpec default_;
  std::map<std::string, QuotaSpec> overrides_;
};

/// Estimated cost units for one admission of `spec` (pass the *resolved*
/// spec so defaulted algorithm/b lists are visible).  Never 0; saturates
/// instead of overflowing.
std::uint64_t estimate_cost(const scenario::ScenarioSpec& spec);

/// Deficit round-robin queue across client lanes, charged in cost units.
/// Backlogged lanes sit in a rotation; each visit earns `quantum` credit,
/// an item pops when its lane's credit covers its cost, and an emptied
/// lane forfeits leftover credit (classic DRR — idle clients bank
/// nothing).  Externally synchronized, like std::deque.
template <typename T>
class DrrQueue {
 public:
  explicit DrrQueue(std::uint64_t quantum)
      : quantum_(std::max<std::uint64_t>(1, quantum)) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void push(const std::string& client, std::uint64_t cost, T item) {
    Lane& lane = lanes_[client];
    if (lane.items.empty()) round_.push_back(client);
    lane.items.emplace_back(std::max<std::uint64_t>(1, cost),
                            std::move(item));
    ++size_;
  }

  /// Pops the next item under DRR order.  False when empty.
  bool pop(T* out) {
    if (size_ == 0) return false;
    std::size_t since_pop = 0;  // lanes visited with no pop
    while (true) {
      if (cursor_ >= round_.size()) cursor_ = 0;
      Lane& lane = lanes_.find(round_[cursor_])->second;
      // One quantum per *visit*, not per pop: a lane drains its earned
      // deficit across consecutive pop() calls, then yields the cursor.
      // Granting on every pop would let any lane whose head fits one
      // quantum hold the cursor forever — FIFO in disguise.
      if (!granted_) {
        lane.deficit += quantum_;
        granted_ = true;
      }
      const std::uint64_t head = lane.items.front().first;
      if (head > lane.deficit) {
        // Visit over; the lane keeps its deficit for the next round.
        ++cursor_;
        granted_ = false;
        if (++since_pop >= round_.size()) {
          // A full round moved nothing: every head still exceeds its
          // deficit.  Grant the remaining rounds-to-first-pop in one
          // step so a giant head costs O(clients), not O(cost).
          std::uint64_t rounds = UINT64_MAX;
          for (const std::string& name : round_) {
            const Lane& l = lanes_.find(name)->second;
            const std::uint64_t need = l.items.front().first - l.deficit;
            rounds = std::min(rounds, (need + quantum_ - 1) / quantum_);
          }
          if (rounds > 1)
            for (const std::string& name : round_)
              lanes_.find(name)->second.deficit += (rounds - 1) * quantum_;
          since_pop = 0;
        }
        continue;
      }
      *out = std::move(lane.items.front().second);
      lane.deficit -= head;
      lane.items.pop_front();
      --size_;
      if (lane.items.empty()) {
        // Forfeit leftover credit and leave the rotation; the cursor now
        // addresses the next lane without advancing.
        lanes_.erase(round_[cursor_]);
        round_.erase(round_.begin() +
                     static_cast<std::ptrdiff_t>(cursor_));
        granted_ = false;
      }
      return true;
    }
  }

  /// Every queued item, FIFO within each lane (drain/shutdown sweeps).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [client, lane] : lanes_)
      for (const auto& [cost, item] : lane.items) fn(item);
  }

 private:
  struct Lane {
    std::deque<std::pair<std::uint64_t, T>> items;  ///< (cost, item)
    std::uint64_t deficit = 0;
  };
  std::map<std::string, Lane> lanes_;  ///< backlogged lanes only
  std::vector<std::string> round_;     ///< rotation order over lanes_
  std::size_t cursor_ = 0;
  bool granted_ = false;  ///< cursor lane already earned this visit's quantum
  std::uint64_t quantum_;
  std::size_t size_ = 0;
};

/// Hysteretic brownout levels from queue depth and resident-set size.
/// Level L sheds admissions with priority < L (priority ∈ [0,2], so
/// level 2 still admits priority-2 traffic until the queue bound itself
/// refuses).  Entry thresholds exceed exit thresholds; a daemon hovering
/// at the boundary latches rather than flaps.
class Brownout {
 public:
  Brownout(std::size_t queue_limit, std::uint64_t max_rss_bytes)
      : queue_limit_(queue_limit), max_rss_(max_rss_bytes) {}

  /// Re-evaluates the level.  rss_bytes 0 (or an unset watermark)
  /// disables the RSS leg.  Enter L1 at queue ≥ 1/2 or RSS ≥ 0.80·max;
  /// enter L2 at queue ≥ 7/8 or RSS ≥ 0.95·max; exit L2→L1 below
  /// queue 1/2 and RSS 0.85·max; exit L1→L0 below queue 1/4 and
  /// RSS 0.70·max.
  int update(std::size_t queued, std::uint64_t rss_bytes);

  int level() const noexcept { return level_; }

 private:
  std::size_t queue_limit_;
  std::uint64_t max_rss_;
  int level_ = 0;
};

/// EWMA of completed-run durations → honest REJECT retry hints: with Q
/// runs queued and E executors, a slot frees in about ewma·(Q+1)/E.
/// Externally synchronized.
class DrainEstimator {
 public:
  void observe_run_ns(std::uint64_t ns) {
    // alpha = 1/5: a few runs settle the estimate, one outlier doesn't
    // own it.
    ewma_ns_ = ewma_ns_ == 0 ? ns : (ns + 4 * ewma_ns_) / 5;
  }

  std::uint64_t ewma_ns() const noexcept { return ewma_ns_; }

  /// Suggested retry delay.  Before any observation the configured
  /// `fallback_ms` stands in; afterwards the hint is clamped to
  /// [1, 60000] ms so a pathological EWMA can't tell clients "never".
  std::uint32_t retry_ms(std::size_t queued, std::size_t executors,
                         std::uint32_t fallback_ms) const;

 private:
  std::uint64_t ewma_ns_ = 0;
};

/// Resident-set size of this process in bytes (/proc/self/status VmRSS).
/// 0 when the proc interface is unavailable (non-Linux) — callers treat
/// that as "watermark disabled", never as pressure.
std::uint64_t read_rss_bytes();

}  // namespace rdcn::serve
