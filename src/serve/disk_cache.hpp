// rdcn: the daemon's persistent on-disk results cache.
//
// The in-memory ResultsCache dies with the process; this store makes
// completed scenario results survive a daemon restart.  One file per
// entry in a flat directory, named by the FNV-1a hash of the key
// (ScenarioSpec::canonical_string()), each laid out as
//
//   "RDC1"            4-byte magic (format version 1)
//   key_len           u32 little-endian
//   payload_len       u32 little-endian
//   key bytes         the canonical spec string (verified on read —
//                     filename hashes are a lookup hint, not the identity)
//   payload bytes     the run's CSV table, verbatim
//   crc32             u32 LE, IEEE 802.3 polynomial over key+payload
//
// Durability policy: writes go to "<name>.tmp" and rename(2) into place,
// so a crash mid-write leaves at worst a stale .tmp (removed on the next
// load) — never a half-visible entry.  A *torn* committed entry (rename
// reordered before its data reached disk, or plain corruption) fails the
// magic/length/CRC checks at startup: it is logged to stderr, deleted,
// and counted in Stats::corrupt_skipped; the daemon serves everything
// else.  Load validates every entry once and keeps an in-memory key →
// path index, so get() is one file read and put() one write + rename.
//
// Thread-safe (one mutex — the daemon touches it once per submission and
// once per completed run).  An empty directory string disables the cache
// entirely: every get misses, every put is dropped.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/crc32.hpp"
#include "obs/metrics.hpp"

namespace rdcn::serve {

/// The checksum guarding disk-cache entries (shared with the run
/// journal — see common/crc32.hpp).  Kept in this namespace for the
/// tests that forge/corrupt entries.
using rdcn::crc32;

class DiskCache {
 public:
  /// Opens (creating if needed) the store under `directory` and validates
  /// every entry; "" disables the cache.  Throws SpecError when the
  /// directory cannot be created.  With `registry` the cache's counters
  /// and I/O histograms register there (rdcn_serve_disk_*); without,
  /// they live in a private one — stats() reads the same metrics either
  /// way (single source of truth).
  explicit DiskCache(std::string directory,
                     obs::Registry* registry = nullptr);

  bool enabled() const noexcept { return !directory_.empty(); }

  /// Reads the payload for `key`, re-verifying the entry's CRC (a file
  /// corrupted *after* load is skipped, deleted, and counted rather than
  /// served).
  std::optional<std::string> get(const std::string& key);

  /// Persists (or refreshes) `key` via temp-file + rename.  Failures are
  /// counted, logged, and swallowed — a broken disk degrades the daemon
  /// to compute-only, it doesn't take runs down with it.
  void put(const std::string& key, const std::string& payload);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt_skipped = 0;  ///< torn/corrupt entries dropped
    std::uint64_t write_failures = 0;
    std::size_t entries = 0;  ///< currently indexed valid entries
  };
  Stats stats() const;

 private:
  /// Scans the directory: indexes valid entries, removes stale .tmp
  /// files, deletes + counts corrupt entries.
  void load();

  std::string entry_path(const std::string& key) const;

  const std::string directory_;
  std::unique_ptr<obs::Registry> own_registry_;  ///< when none was passed
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& corrupt_skipped_;
  obs::Counter& write_failures_;
  obs::Gauge& entries_;
  obs::Counter& read_bytes_;
  obs::Counter& write_bytes_;
  obs::Histogram& read_seconds_;
  obs::Histogram& write_seconds_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> index_;  ///< key → path
};

}  // namespace rdcn::serve
