#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "serve/protocol.hpp"

namespace rdcn::serve {

namespace {

/// Mirror of the daemon's reader-side cap; a daemon streaming a longer
/// line is misbehaving, not slow.
constexpr std::size_t kMaxLineBytes = 1u << 20;

void apply_read_timeout(int fd, long seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

int connect_once(const sockaddr_un& addr, long read_timeout_seconds) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  apply_read_timeout(fd, read_timeout_seconds);
  return fd;
}

}  // namespace

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  pending_.clear();
}

void Client::connect(const std::string& socket_path, int timeout_ms) {
  disconnect();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    throw SpecError("socket path '" + socket_path +
                    "' is empty or too long for AF_UNIX");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  socket_path_ = socket_path;

  const auto deadline =
      monotonic_now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    fd_ = connect_once(addr, read_timeout_seconds_);
    if (fd_ >= 0) return;
    // ENOENT/ECONNREFUSED while the daemon is still starting up.
    if (monotonic_now() >= deadline)
      throw SpecError("cannot connect to '" + socket_path +
                      "': " + std::strerror(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void Client::reconnect(int timeout_ms) {
  if (socket_path_.empty())
    throw SpecError("reconnect before any connect()");
  connect(socket_path_, timeout_ms);
  // A fresh connection is anonymous; replay the HELLO binding so retried
  // submissions keep charging the same quota/fairness lane.
  if (!client_name_.empty()) {
    const std::string name = client_name_;
    client_name_.clear();  // hello() re-sets it on success
    hello(name);
  }
}

void Client::hello(const std::string& client) {
  send_line("HELLO client=" + client);
  const std::string reply = read_line();
  const ServerLine line = parse_server_line(reply);
  if (line.kind != ServerLine::Kind::kWelcome || line.text != client)
    throw SpecError("unexpected HELLO reply: " + reply);
  client_name_ = client;
}

void Client::send_line(const std::string& line) {
  if (fd_ < 0) throw SpecError("client is not connected");
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw TransportError(TransportError::Kind::kIo,
                           std::string("send failed: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_line() {
  // Lines submit() stashed while hunting for its admission verdict come
  // first — they are older than anything still in the socket.
  if (!pending_.empty()) {
    std::string line = std::move(pending_.front());
    pending_.pop_front();
    return line;
  }
  return read_socket_line();
}

std::string Client::read_socket_line() {
  if (fd_ < 0) throw SpecError("client is not connected");
  while (true) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > kMaxLineBytes)
      throw TransportError(TransportError::Kind::kIo,
                           "daemon sent a line longer than " +
                               std::to_string(kMaxLineBytes) + " bytes");
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    // The three failure shapes stay distinguishable: orderly EOF means
    // the daemon is gone (reconnect+resubmit can help), a timeout means
    // it is merely slow or wedged (retrying just piles on), and a hard
    // error is a broken transport.
    if (n == 0)
      throw TransportError(TransportError::Kind::kEof,
                           "daemon closed the connection (EOF)");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TransportError(
            TransportError::Kind::kTimeout,
            "timed out waiting for the daemon (no bytes in " +
                std::to_string(read_timeout_seconds_) + "s)");
      throw TransportError(TransportError::Kind::kIo,
                           std::string("recv failed: ") +
                               std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::ping() {
  send_line("PING");
  const std::string reply = read_line();
  if (parse_server_line(reply).kind != ServerLine::Kind::kPong)
    throw SpecError("unexpected PING reply: " + reply);
}

Client::Submission Client::submit(const std::string& spec,
                                  std::uint64_t deadline_ms) {
  std::string line = "RUN " + spec;
  if (deadline_ms > 0)
    line += " deadline_ms=" + std::to_string(deadline_ms);
  if (priority_ != 1) line += " priority=" + std::to_string(priority_);
  send_line(line);
  Submission out;
  // The verdict answers the RUN just sent, so it can only be on the
  // socket — never in pending_, which holds older stream lines already
  // stashed for a collect().  Popping pending_ here would reorder it and,
  // worse, desync RESULT framing: a stashed RESULT header replayed here
  // would make the loop below "consume" its payload from the socket,
  // swallowing unrelated lines (this submission's verdict included).
  std::string raw = read_socket_line();
  ServerLine reply = parse_server_line(raw);
  // A CANCELLING ack can straggle past its run's DONE when the cancelled
  // run completed in the same instant (natural completion racing the
  // cancel); it carries no information for this submission — skip it.
  // Stream lines from runs still in flight on this connection (pipelined
  // submissions) also interleave with the verdict: stash those — payload
  // blocks included — so the collect() that wants them still sees them.
  while (reply.kind == ServerLine::Kind::kCancelling ||
         reply.kind == ServerLine::Kind::kCheckpoint ||
         reply.kind == ServerLine::Kind::kResult ||
         reply.kind == ServerLine::Kind::kDone) {
    if (reply.kind != ServerLine::Kind::kCancelling) {
      pending_.push_back(raw);
      if (reply.kind == ServerLine::Kind::kResult)
        for (std::size_t i = 0; i < reply.lines; ++i)
          pending_.push_back(read_socket_line());
    }
    raw = read_socket_line();
    reply = parse_server_line(raw);
  }
  switch (reply.kind) {
    case ServerLine::Kind::kAccepted:
      out.accepted = true;
      out.id = reply.id;
      break;
    case ServerLine::Kind::kReject:
      out.rejected = true;
      out.retry_ms = reply.retry_ms;
      out.reason = reply.status;
      break;
    case ServerLine::Kind::kError:
      out.error = reply.text;
      break;
    default:
      throw SpecError("unexpected RUN reply: " + reply.text);
  }
  return out;
}

Client::RunOutput Client::collect(
    std::uint64_t id,
    const std::function<void(const std::string& line)>& on_checkpoint) {
  RunOutput out;
  while (true) {
    const std::string raw = read_line();
    const ServerLine line = parse_server_line(raw);
    switch (line.kind) {
      case ServerLine::Kind::kCheckpoint:
        if (line.id != id) continue;  // another run on this connection
        ++out.checkpoints;
        if (on_checkpoint) on_checkpoint(raw);
        continue;
      case ServerLine::Kind::kResult: {
        if (line.id != id) continue;
        out.cached = line.cached;
        out.csv.clear();
        for (std::size_t i = 0; i < line.lines; ++i)
          out.csv += read_line() + "\n";
        continue;
      }
      case ServerLine::Kind::kError:
        out.error = line.text;  // precedes DONE status=error
        continue;
      case ServerLine::Kind::kDone:
        if (line.id != id) continue;
        out.status = line.status;
        return out;
      case ServerLine::Kind::kCancelling:
        continue;  // ack for a CANCEL sent while collecting
      default:
        throw SpecError("unexpected line while collecting run " +
                        std::to_string(id) + ": " + raw);
    }
  }
}

Client::AttachResult Client::attach(std::uint64_t id, std::uint64_t from) {
  std::string line = "ATTACH " + std::to_string(id);
  if (from > 1) line += " from=" + std::to_string(from);
  send_line(line);
  AttachResult out;
  while (true) {
    const ServerLine reply = parse_server_line(read_line());
    switch (reply.kind) {
      case ServerLine::Kind::kAttached:
        out.attached = true;
        out.state = reply.status;
        out.last_seq = reply.seq;
        return out;
      case ServerLine::Kind::kError:
        out.error = reply.text;
        return out;
      case ServerLine::Kind::kCheckpoint:
      case ServerLine::Kind::kCancelling:
        continue;  // other runs' lines interleaving on this connection
      default:
        throw SpecError("unexpected ATTACH reply");
    }
  }
}

Client::RunOutput Client::run_scenario(
    const std::string& spec, const RetryPolicy& policy,
    std::uint64_t deadline_ms,
    const std::function<void(const std::string& line)>& on_checkpoint) {
  // Deterministic jitter stream; seed 0 decorrelates by process identity
  // so a fleet of default-policy clients doesn't thunder in lockstep.
  SplitMix64 jitter(policy.jitter_seed != 0
                        ? policy.jitter_seed
                        : 0x9e3779b97f4a7c15ULL ^
                              static_cast<std::uint64_t>(::getpid()));
  std::uint64_t backoff_ms = policy.base_backoff_ms;
  std::string last_failure = "never submitted";
  // Resume state: the ACCEPTED id of the in-flight attempt and how many
  // checkpoints this client already consumed — a reconnect ATTACHes with
  // from=seen+1 so the daemon replays exactly the missed ones (valid even
  // across a daemon restart: the recovered run re-emits the same
  // deterministic checkpoint sequence).
  std::uint64_t live_id = 0;
  std::uint64_t checkpoints_seen = 0;
  const auto tap = [&](const std::string& raw) {
    ++checkpoints_seen;
    if (on_checkpoint) on_checkpoint(raw);
  };

  const auto sleep_with_jitter = [&](std::uint64_t delay_ms) {
    // Full delay shrunk into [delay/2, delay]: bounded above by the
    // backoff cap, spread out enough to decorrelate retry storms.
    const std::uint64_t half = delay_ms / 2;
    const std::uint64_t span = delay_ms - half + 1;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(half + jitter.next() % span));
  };

  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    const auto bump_backoff = [&] {
      backoff_ms = std::min<std::uint64_t>(backoff_ms * 2,
                                           policy.max_backoff_ms);
    };
    try {
      if (!connected()) reconnect(policy.reconnect_timeout_ms);
      if (live_id != 0) {
        // A previous attempt's run may still be going (or already done)
        // server-side: rejoin it instead of resubmitting blind.
        const AttachResult at = attach(live_id, checkpoints_seen + 1);
        if (at.attached) {
          RunOutput out = collect(live_id, tap);
          // "cancelled" here is the daemon reaping the run we orphaned
          // by disconnecting (no journal to make it durable) — a lost
          // run, not an answer; fall through to a fresh submission.
          if (out.status != "cancelled") {
            out.checkpoints = static_cast<std::size_t>(checkpoints_seen);
            out.attempts = attempt;
            return out;
          }
        }
        // The daemon forgot (or reaped) the run; start over fresh.
        live_id = 0;
        checkpoints_seen = 0;
      }
      const Submission sub = submit(spec, deadline_ms);
      if (!sub.error.empty()) {
        // Refused (bad spec, quarantined): permanent, don't burn retries.
        RunOutput out;
        out.status = "error";
        out.error = sub.error;
        out.attempts = attempt;
        return out;
      }
      if (sub.rejected) {
        last_failure =
            "rejected (reason=" +
            (sub.reason.empty() ? std::string("queue_full") : sub.reason) +
            ", retry_ms=" + std::to_string(sub.retry_ms) + ")";
        // The server's hint is honest but clamped: a brownout-inflated
        // hint must not park this client for a minute on one REJECT.
        const std::uint32_t hint =
            std::min(sub.retry_ms, policy.max_retry_hint_ms);
        sleep_with_jitter(std::max<std::uint64_t>(hint, backoff_ms));
        bump_backoff();
        continue;
      }
      live_id = sub.id;
      RunOutput out = collect(sub.id, tap);
      out.checkpoints = static_cast<std::size_t>(checkpoints_seen);
      out.attempts = attempt;
      return out;
    } catch (const TransportError& e) {
      if (e.kind() == TransportError::Kind::kTimeout)
        throw;  // daemon is slow/wedged, not gone — retrying piles on
      // kEof/kIo: the daemon (or our connection) went away mid-run.
      // Reconnect and ATTACH by the accepted id (or resubmit when there
      // is none); a run that completed server-side replays its stored
      // outcome, so no work is repeated.
      last_failure = e.what();
      disconnect();
      sleep_with_jitter(backoff_ms);
      bump_backoff();
    }
  }
  throw SpecError("run_scenario gave up after " +
                  std::to_string(policy.max_attempts) +
                  " attempts; last failure: " + last_failure);
}

bool Client::cancel(std::uint64_t id) {
  // While a run is streaming, prefer send_line("CANCEL <id>") and let
  // collect() skip the CANCELLING ack — this helper reads its own reply,
  // so interleaved run output would be consumed here.  It drops stray
  // CHECKPOINTs (harmless progress) but treats anything else as "the run
  // already finished".
  send_line("CANCEL " + std::to_string(id));
  while (true) {
    const ServerLine line = parse_server_line(read_line());
    if (line.kind == ServerLine::Kind::kCancelling) return true;
    if (line.kind == ServerLine::Kind::kCheckpoint) continue;
    return false;
  }
}

std::size_t Client::reset_common(const std::string& line) {
  send_line(line);
  while (true) {
    const ServerLine reply = parse_server_line(read_line());
    if (reply.kind == ServerLine::Kind::kResetOk) return reply.lines;
    if (reply.kind == ServerLine::Kind::kCheckpoint) continue;
    throw SpecError("unexpected RESET reply");
  }
}

std::size_t Client::reset_quarantine(const std::string& canonical_spec) {
  return reset_common("RESET spec=" + canonical_spec);
}

std::size_t Client::reset_all() { return reset_common("RESET all=1"); }

std::string Client::stats() {
  send_line("STATS");
  while (true) {
    const ServerLine line = parse_server_line(read_line());
    if (line.kind == ServerLine::Kind::kStats) return line.text;
    if (line.kind == ServerLine::Kind::kCheckpoint) continue;
    throw SpecError("unexpected STATS reply");
  }
}

StatsReport Client::stats_report() { return parse_stats(stats()); }

std::string Client::metrics() {
  send_line("METRICS");
  while (true) {
    const ServerLine line = parse_server_line(read_line());
    if (line.kind == ServerLine::Kind::kMetrics) {
      // Exposition lines follow the header back-to-back (one write unit
      // on the daemon side, like RESULT payloads).
      std::string text;
      for (std::size_t i = 0; i < line.lines; ++i)
        text += read_line() + "\n";
      return text;
    }
    if (line.kind == ServerLine::Kind::kCheckpoint) continue;
    throw SpecError("unexpected METRICS reply");
  }
}

void Client::set_read_timeout_seconds(long seconds) {
  read_timeout_seconds_ = seconds;
  if (fd_ >= 0) apply_read_timeout(fd_, seconds);
}

void Client::shutdown_daemon(bool drain) {
  send_line(drain ? "SHUTDOWN drain=1" : "SHUTDOWN");
  while (true) {
    const ServerLine line = parse_server_line(read_line());
    if (line.kind == ServerLine::Kind::kBye) return;
    if (line.kind == ServerLine::Kind::kCheckpoint ||
        line.kind == ServerLine::Kind::kDone)
      continue;  // in-flight run lines racing the shutdown
    throw SpecError("unexpected SHUTDOWN reply");
  }
}

}  // namespace rdcn::serve
