#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/param_map.hpp"
#include "serve/protocol.hpp"

namespace rdcn::serve {

namespace {

/// Generous per-read timeout: a healthy run emits a CHECKPOINT at least
/// every requests/checkpoints chunk, so minutes of silence means the
/// daemon died — better a clear error than a hung client.
constexpr long kReadTimeoutSeconds = 600;

int connect_once(const sockaddr_un& addr) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = kReadTimeoutSeconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

}  // namespace

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::connect(const std::string& socket_path, int timeout_ms) {
  disconnect();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    throw SpecError("socket path '" + socket_path +
                    "' is empty or too long for AF_UNIX");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    fd_ = connect_once(addr);
    if (fd_ >= 0) return;
    // ENOENT/ECONNREFUSED while the daemon is still starting up.
    if (std::chrono::steady_clock::now() >= deadline)
      throw SpecError("cannot connect to '" + socket_path +
                      "': " + std::strerror(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void Client::send_line(const std::string& line) {
  if (fd_ < 0) throw SpecError("client is not connected");
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw SpecError(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_line() {
  if (fd_ < 0) throw SpecError("client is not connected");
  while (true) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) throw SpecError("daemon closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw SpecError("timed out waiting for the daemon");
      throw SpecError(std::string("recv failed: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::ping() {
  send_line("PING");
  const std::string reply = read_line();
  if (parse_server_line(reply).kind != ServerLine::Kind::kPong)
    throw SpecError("unexpected PING reply: " + reply);
}

Client::Submission Client::submit(const std::string& spec) {
  send_line("RUN " + spec);
  Submission out;
  const ServerLine reply = parse_server_line(read_line());
  switch (reply.kind) {
    case ServerLine::Kind::kAccepted:
      out.accepted = true;
      out.id = reply.id;
      break;
    case ServerLine::Kind::kReject:
      out.rejected = true;
      out.retry_ms = reply.retry_ms;
      break;
    case ServerLine::Kind::kError:
      out.error = reply.text;
      break;
    default:
      throw SpecError("unexpected RUN reply: " + reply.text);
  }
  return out;
}

Client::RunOutput Client::collect(
    std::uint64_t id,
    const std::function<void(const std::string& line)>& on_checkpoint) {
  RunOutput out;
  while (true) {
    const std::string raw = read_line();
    const ServerLine line = parse_server_line(raw);
    switch (line.kind) {
      case ServerLine::Kind::kCheckpoint:
        if (line.id != id) continue;  // another run on this connection
        ++out.checkpoints;
        if (on_checkpoint) on_checkpoint(raw);
        continue;
      case ServerLine::Kind::kResult: {
        if (line.id != id) continue;
        out.cached = line.cached;
        out.csv.clear();
        for (std::size_t i = 0; i < line.lines; ++i)
          out.csv += read_line() + "\n";
        continue;
      }
      case ServerLine::Kind::kError:
        out.error = line.text;  // precedes DONE status=error
        continue;
      case ServerLine::Kind::kDone:
        if (line.id != id) continue;
        out.status = line.status;
        return out;
      case ServerLine::Kind::kCancelling:
        continue;  // ack for a CANCEL sent while collecting
      default:
        throw SpecError("unexpected line while collecting run " +
                        std::to_string(id) + ": " + raw);
    }
  }
}

bool Client::cancel(std::uint64_t id) {
  // While a run is streaming, prefer send_line("CANCEL <id>") and let
  // collect() skip the CANCELLING ack — this helper reads its own reply,
  // so interleaved run output would be consumed here.  It drops stray
  // CHECKPOINTs (harmless progress) but treats anything else as "the run
  // already finished".
  send_line("CANCEL " + std::to_string(id));
  while (true) {
    const ServerLine line = parse_server_line(read_line());
    if (line.kind == ServerLine::Kind::kCancelling) return true;
    if (line.kind == ServerLine::Kind::kCheckpoint) continue;
    return false;
  }
}

std::string Client::stats() {
  send_line("STATS");
  while (true) {
    const ServerLine line = parse_server_line(read_line());
    if (line.kind == ServerLine::Kind::kStats) return line.text;
    if (line.kind == ServerLine::Kind::kCheckpoint) continue;
    throw SpecError("unexpected STATS reply");
  }
}

void Client::shutdown_daemon() {
  send_line("SHUTDOWN");
  while (true) {
    const ServerLine line = parse_server_line(read_line());
    if (line.kind == ServerLine::Kind::kBye) return;
    if (line.kind == ServerLine::Kind::kCheckpoint ||
        line.kind == ServerLine::Kind::kDone)
      continue;  // in-flight run lines racing the shutdown
    throw SpecError("unexpected SHUTDOWN reply");
  }
}

}  // namespace rdcn::serve
