// rdcn: the daemon's LRU results cache.
//
// Scenario runs are deterministic functions of their spec (seed included),
// so a completed run's CSV payload can be replayed for any later
// submission of an *equivalent* spec.  Equivalence is textual-after-
// canonicalization: keys are ScenarioSpec::canonical_string(), which sorts
// every component's parameters and drops execution-only fields — so
// "r_bma:b=16,eager" and "r_bma:eager,b=16" hit the same entry.
//
// Bounded by entry count with least-recently-used eviction; every method
// is thread-safe (one mutex — the payloads are small strings and the
// daemon touches the cache once per submission, not per request).
//
// Hit/miss/entry counts live as obs metrics — the registry is the single
// source of truth; stats() is just a read of the same counters METRICS
// exposes (rdcn_serve_cache_*).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"

namespace rdcn::serve {

class ResultsCache {
 public:
  /// `capacity` = maximum resident entries; 0 disables caching entirely
  /// (every get misses, every put is dropped).  With `registry` the
  /// cache's counters register there (the daemon passes its per-instance
  /// registry); without, they live in a private one.
  explicit ResultsCache(std::size_t capacity,
                        obs::Registry* registry = nullptr);

  /// Returns the payload for `key` and marks it most-recently-used.
  std::optional<std::string> get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// when at capacity.
  void put(const std::string& key, std::string payload);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  using Entry = std::pair<std::string, std::string>;  ///< key → payload

  const std::size_t capacity_;
  std::unique_ptr<obs::Registry> own_registry_;  ///< when none was passed
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Gauge& entries_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace rdcn::serve
