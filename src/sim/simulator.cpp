#include "sim/simulator.hpp"

#include <algorithm>

#include "common/stopwatch.hpp"

namespace rdcn::sim {

std::vector<std::uint64_t> checkpoint_grid(std::uint64_t total_requests,
                                           std::size_t points) {
  RDCN_ASSERT(points >= 1 && total_requests >= points);
  std::vector<std::uint64_t> grid;
  grid.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    grid.push_back(total_requests * i / points);
  }
  return grid;
}

RunResult run_simulation(core::OnlineBMatcher& matcher,
                         const trace::Trace& trace,
                         std::vector<std::uint64_t> checkpoints) {
  RDCN_ASSERT_MSG(!checkpoints.empty(), "need at least one checkpoint");
  RDCN_ASSERT_MSG(std::is_sorted(checkpoints.begin(), checkpoints.end()),
                  "checkpoints must be non-decreasing");
  checkpoints.back() = std::min<std::uint64_t>(checkpoints.back(),
                                               trace.size());

  RunResult result;
  result.algorithm = matcher.name();
  result.trace_name = trace.name();
  result.b = matcher.instance().b;
  result.checkpoints.reserve(checkpoints.size());

  Stopwatch watch;
  watch.reset();
  std::size_t next_cp = 0;
  const auto snapshot = [&](std::uint64_t served) {
    const core::CostStats& costs = matcher.costs();
    Checkpoint c;
    c.requests = served;
    c.routing_cost = costs.routing_cost;
    c.reconfig_cost = costs.reconfig_cost;
    c.total_cost = costs.total_cost();
    c.direct_serves = costs.direct_serves;
    c.edge_adds = costs.edge_adds;
    c.edge_removals = costs.edge_removals;
    c.matching_size = matcher.matching().size();
    c.wall_seconds = watch.seconds();
    result.checkpoints.push_back(c);
    ++next_cp;
  };
  // A checkpoint at 0 snapshots the pre-trace state; this is also how an
  // empty trace yields a (zero-cost) ledger instead of tripping the
  // grid-exhaustion assert below.
  while (next_cp < checkpoints.size() && checkpoints[next_cp] == 0) {
    snapshot(0);
  }
  if (next_cp >= checkpoints.size()) return result;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    matcher.serve(trace[i]);
    const std::uint64_t served = i + 1;
    while (next_cp < checkpoints.size() && served == checkpoints[next_cp]) {
      watch.pause();
      snapshot(served);
      watch.resume();
    }
    if (next_cp >= checkpoints.size()) break;
  }
  RDCN_ASSERT_MSG(next_cp == checkpoints.size(),
                  "trace shorter than checkpoint grid");
  return result;
}

RunResult run_to_completion(core::OnlineBMatcher& matcher,
                            const trace::Trace& trace) {
  return run_simulation(matcher, trace, {trace.size()});
}

}  // namespace rdcn::sim
