#include "sim/simulator.hpp"

#include <algorithm>
#include <span>

#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rdcn::sim {

std::vector<std::uint64_t> checkpoint_grid(std::uint64_t total_requests,
                                           std::size_t points) {
  RDCN_ASSERT(points >= 1 && total_requests >= points);
  std::vector<std::uint64_t> grid;
  grid.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    grid.push_back(total_requests * i / points);
  }
  return grid;
}

namespace {

/// Chunk-loop throughput counters (process-wide registry).  Bumped once
/// per kServeChunk, so the cost is two striped relaxed adds per 4096
/// requests — invisible to the perf gate.
struct SimCounters {
  obs::Counter& chunks;
  obs::Counter& requests;

  static SimCounters& get() {
    static SimCounters c{
        obs::Registry::global().counter("rdcn_sim_chunks_total",
                                        "Serve chunks executed"),
        obs::Registry::global().counter("rdcn_sim_requests_total",
                                        "Requests served by the chunk loop")};
    return c;
  }
};

/// Captures the matcher's cumulative ledger as one checkpoint row.
struct Snapshotter {
  core::OnlineBMatcher& matcher;
  Stopwatch& watch;
  RunResult& result;
  const RunControl& control;
  std::size_t next_cp = 0;

  void snapshot(std::uint64_t served) {
    const core::CostStats& costs = matcher.costs();
    Checkpoint c;
    c.requests = served;
    c.routing_cost = costs.routing_cost;
    c.reconfig_cost = costs.reconfig_cost;
    c.total_cost = costs.total_cost();
    c.direct_serves = costs.direct_serves;
    c.edge_adds = costs.edge_adds;
    c.edge_removals = costs.edge_removals;
    c.matching_size = matcher.matching().size();
    c.wall_seconds = watch.seconds();
    result.checkpoints.push_back(c);
    ++next_cp;
    // snapshot() runs with the clock paused (or before it starts), so the
    // streaming hook never pollutes the wall-clock measurement.
    if (control.on_checkpoint) control.on_checkpoint(c);
  }
};

/// Chunk sources for the batched replay loop.  `kTimedFill` distinguishes
/// materialized traces (gather is part of the serve pipeline and is timed)
/// from streams (fill is trace *generation*, which the paper's wall-clock
/// methodology excludes).
struct TraceSource {
  const trace::Trace& trace;
  static constexpr bool kTimedFill = true;

  std::uint64_t size() const { return trace.size(); }
  const std::string& name() const { return trace.name(); }
  void fill(std::uint64_t offset, std::size_t n, trace::Request* out) const {
    trace.gather(offset, n, out);
  }
};

struct StreamSource {
  trace::TraceStream& stream;
  static constexpr bool kTimedFill = false;

  std::uint64_t size() const { return stream.total(); }
  const std::string& name() const { return stream.name(); }
  void fill([[maybe_unused]] std::uint64_t offset, std::size_t n,
            trace::Request* out) const {
    RDCN_DCHECK(offset == stream.produced());
    const std::size_t got = stream.next(out, n);
    RDCN_ASSERT_MSG(got == n, "trace stream ended before its total()");
  }
};

template <typename Source>
RunResult run_batched(core::OnlineBMatcher& matcher, const Source& source,
                      std::vector<std::uint64_t> checkpoints,
                      const RunControl& control) {
  RDCN_ASSERT_MSG(!checkpoints.empty(), "need at least one checkpoint");
  RDCN_ASSERT_MSG(std::is_sorted(checkpoints.begin(), checkpoints.end()),
                  "checkpoints must be non-decreasing");
  checkpoints.back() = std::min<std::uint64_t>(checkpoints.back(),
                                               source.size());

  RunResult result;
  result.algorithm = matcher.name();
  result.trace_name = source.name();
  result.b = matcher.instance().b;
  result.checkpoints.reserve(checkpoints.size());

  // Scratch is allocated (and the chunk loop's working set decided) before
  // the clock starts.
  std::vector<trace::Request> scratch(static_cast<std::size_t>(
      std::min<std::uint64_t>(kServeChunk,
                              std::max<std::uint64_t>(source.size(), 1))));

  Stopwatch watch;
  watch.reset();
  Snapshotter snap{matcher, watch, result, control};
  // A checkpoint at 0 snapshots the pre-trace state; this is also how an
  // empty trace yields a (zero-cost) ledger.
  while (snap.next_cp < checkpoints.size() &&
         checkpoints[snap.next_cp] == 0) {
    snap.snapshot(0);
  }

  SimCounters& sim_counters = SimCounters::get();
  std::uint64_t served = 0;
  while (snap.next_cp < checkpoints.size()) {
    const std::uint64_t target = checkpoints[snap.next_cp];
    RDCN_ASSERT_MSG(target <= source.size(),
                    "trace shorter than checkpoint grid");
    // Serve up to the next grid point in chunks clipped at the boundary:
    // the final chunk before a checkpoint shrinks so no request beyond it
    // is served before the snapshot.
    while (served < target) {
      // Cooperative cancellation: checked once per chunk, so a cancelled
      // run stops within one kServeChunk boundary of the request.
      if (control.cancel.cancelled())
        throw CancelledError("run cancelled after " + std::to_string(served) +
                             " of " + std::to_string(source.size()) +
                             " requests");
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(kServeChunk, target - served));
      if constexpr (!Source::kTimedFill) {
        // Stream fill is trace *generation*: excluded from the wall
        // clock and traced as its own phase.
        obs::ObsSpan span("sim.generate");
        watch.pause();
        source.fill(served, chunk, scratch.data());
        watch.resume();
      }
      {
        obs::ObsSpan span("sim.serve");
        if constexpr (Source::kTimedFill)
          source.fill(served, chunk, scratch.data());
        matcher.serve_batch(std::span<const trace::Request>(scratch.data(),
                                                            chunk));
      }
      served += chunk;
      sim_counters.chunks.inc();
      sim_counters.requests.add(chunk);
    }
    while (snap.next_cp < checkpoints.size() &&
           checkpoints[snap.next_cp] == served) {
      obs::ObsSpan span("sim.checkpoint");
      watch.pause();
      snap.snapshot(served);
      watch.resume();
    }
  }
  return result;
}

}  // namespace

RunResult run_simulation(core::OnlineBMatcher& matcher,
                         const trace::Trace& trace,
                         std::vector<std::uint64_t> checkpoints,
                         const RunControl& control) {
  return run_batched(matcher, TraceSource{trace}, std::move(checkpoints),
                     control);
}

RunResult run_simulation(core::OnlineBMatcher& matcher,
                         trace::TraceStream& stream,
                         std::vector<std::uint64_t> checkpoints,
                         const RunControl& control) {
  RDCN_ASSERT_MSG(stream.produced() == 0,
                  "run_simulation needs an unconsumed stream");
  return run_batched(matcher, StreamSource{stream}, std::move(checkpoints),
                     control);
}

RunResult run_simulation_scalar(core::OnlineBMatcher& matcher,
                                const trace::Trace& trace,
                                std::vector<std::uint64_t> checkpoints) {
  RDCN_ASSERT_MSG(!checkpoints.empty(), "need at least one checkpoint");
  RDCN_ASSERT_MSG(std::is_sorted(checkpoints.begin(), checkpoints.end()),
                  "checkpoints must be non-decreasing");
  checkpoints.back() = std::min<std::uint64_t>(checkpoints.back(),
                                               trace.size());

  RunResult result;
  result.algorithm = matcher.name();
  result.trace_name = trace.name();
  result.b = matcher.instance().b;
  result.checkpoints.reserve(checkpoints.size());

  Stopwatch watch;
  watch.reset();
  const RunControl no_control;
  Snapshotter snap{matcher, watch, result, no_control};
  while (snap.next_cp < checkpoints.size() &&
         checkpoints[snap.next_cp] == 0) {
    snap.snapshot(0);
  }
  if (snap.next_cp >= checkpoints.size()) return result;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    matcher.serve(trace[i]);
    const std::uint64_t served = i + 1;
    while (snap.next_cp < checkpoints.size() &&
           served == checkpoints[snap.next_cp]) {
      watch.pause();
      snap.snapshot(served);
      watch.resume();
    }
    if (snap.next_cp >= checkpoints.size()) break;
  }
  RDCN_ASSERT_MSG(snap.next_cp == checkpoints.size(),
                  "trace shorter than checkpoint grid");
  return result;
}

RunResult run_to_completion(core::OnlineBMatcher& matcher,
                            const trace::Trace& trace) {
  return run_simulation(matcher, trace, {trace.size()});
}

RunResult run_to_completion(core::OnlineBMatcher& matcher,
                            trace::TraceStream& stream) {
  return run_simulation(matcher, stream, {stream.total()});
}

}  // namespace rdcn::sim
