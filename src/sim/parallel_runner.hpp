// rdcn: multi-threaded trial execution.
//
// The paper repeats every simulation five times and averages.  Trials are
// embarrassingly parallel (each owns its matcher and RNG stream), so a
// small work-stealing-free pool — an atomic cursor over a task vector —
// extracts all the parallelism with no shared mutable state beyond the
// cursor.  Per-trial results land in pre-sized slots, so no locking on the
// result path either.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace rdcn::sim {

/// Runs fn(i) for i in [0, count) across up to `num_threads` threads
/// (0 = hardware concurrency).  fn must be safe to call concurrently for
/// distinct i.  Blocks until every task finished.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t num_threads = 0);

/// Maps fn over [0, count) and collects results in index order.
template <typename R>
std::vector<R> parallel_map(std::size_t count,
                            const std::function<R(std::size_t)>& fn,
                            std::size_t num_threads = 0) {
  std::vector<R> results(count);
  parallel_for(
      count, [&](std::size_t i) { results[i] = fn(i); }, num_threads);
  return results;
}

}  // namespace rdcn::sim
