// rdcn: multi-threaded trial execution.
//
// The paper repeats every simulation five times and averages.  Trials are
// embarrassingly parallel (each owns its matcher and RNG stream), so an
// atomic cursor over the index space extracts all the parallelism with no
// shared mutable state beyond the cursor.  Work runs on the process-wide
// persistent ThreadPool (sim/thread_pool.hpp): threads are spawned once
// for the whole process, not per call, and the callable is passed through
// a templated trampoline — no std::function type erasure, so per-trial
// closures inline into the dispatch loop.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/cancel.hpp"
#include "sim/thread_pool.hpp"

namespace rdcn::sim {

/// Runs fn(i) for i in [0, count) across up to `num_threads` threads
/// (0 = hardware concurrency; the calling thread participates).  fn must
/// be safe to call concurrently for distinct i and must not throw.
/// Blocks until every task finished.  Once `cancel` fires, indices not yet
/// started are skipped (in-flight ones finish); the caller checks the
/// token afterwards to tell a complete run from a cancelled one.
template <typename F>
void parallel_for(std::size_t count, F&& fn, std::size_t num_threads = 0,
                  const CancelToken& cancel = {}) {
  using Fn = std::remove_reference_t<F>;
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t workers =
      num_threads != 0 ? num_threads : pool.num_workers();
  Fn& ref = fn;
  pool.run(
      count, workers < count ? workers : count,
      [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
      const_cast<void*>(static_cast<const void*>(std::addressof(ref))),
      cancel.raw());
}

/// Maps fn over [0, count) and collects results in index order.
template <typename R, typename F>
std::vector<R> parallel_map(std::size_t count, F&& fn,
                            std::size_t num_threads = 0) {
  std::vector<R> results(count);
  parallel_for(
      count, [&](std::size_t i) { results[i] = fn(i); }, num_threads);
  return results;
}

}  // namespace rdcn::sim
