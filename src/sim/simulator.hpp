// rdcn: the request-driven simulator.
//
// Feeds a trace through an online matcher one request at a time, exactly as
// the model prescribes (serve with current matching, then reconfigure), and
// snapshots cumulative costs at a checkpoint grid.  Wall-clock measurement
// covers only the serve() loop — trace generation, checkpointing, and
// reporting are excluded, mirroring the paper's execution-time methodology.
#pragma once

#include <vector>

#include "core/online_matcher.hpp"
#include "sim/metrics.hpp"
#include "trace/trace.hpp"

namespace rdcn::sim {

/// Evenly spaced checkpoint grid: `points` checkpoints ending exactly at
/// `total_requests`.
std::vector<std::uint64_t> checkpoint_grid(std::uint64_t total_requests,
                                           std::size_t points);

/// Runs `matcher` (already reset/fresh) over `trace`.  `checkpoints` must
/// be non-decreasing; the last entry is clamped to the trace length.  A
/// checkpoint of 0 snapshots the pre-trace (zero-cost) state, which is
/// also how an empty trace yields a ledger.  No request beyond the last
/// checkpoint is served.
RunResult run_simulation(core::OnlineBMatcher& matcher,
                         const trace::Trace& trace,
                         std::vector<std::uint64_t> checkpoints);

/// Convenience: single final checkpoint only.
RunResult run_to_completion(core::OnlineBMatcher& matcher,
                            const trace::Trace& trace);

}  // namespace rdcn::sim
