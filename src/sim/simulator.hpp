// rdcn: the request-driven simulator.
//
// Feeds a trace through an online matcher exactly as the model prescribes
// (serve with the current matching, then reconfigure) and snapshots
// cumulative costs at a checkpoint grid.  Replay is *batched*: requests go
// to OnlineBMatcher::serve_batch in fixed-size chunks (kServeChunk) that
// are clipped at checkpoint boundaries, so checkpoint semantics are
// unchanged — a chunked run's ledger is bit-identical to the scalar
// serve() loop at every grid point (pinned by the batch differential
// suite).  Wall-clock measurement covers the serve pipeline only —
// checkpointing and reporting are excluded, and for TraceStream inputs so
// is chunk generation, mirroring the paper's execution-time methodology
// (trace generation excluded).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/cancel.hpp"
#include "core/online_matcher.hpp"
#include "sim/metrics.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stream.hpp"

namespace rdcn::sim {

/// Requests per serve_batch chunk: 4096 requests = 32 KiB of AoS scratch,
/// so a chunk's working set (scratch + touched columns) stays L2-resident
/// while still amortizing the per-chunk virtual dispatch to nothing.
inline constexpr std::size_t kServeChunk = 4096;

/// Evenly spaced checkpoint grid: `points` checkpoints ending exactly at
/// `total_requests`.
std::vector<std::uint64_t> checkpoint_grid(std::uint64_t total_requests,
                                           std::size_t points);

/// Live-run controls for the serving layer: cooperative cancellation plus
/// checkpoint streaming.  The default-constructed value is a no-op on the
/// replay loop (one inert-token check per chunk).
struct RunControl {
  /// Polled at every chunk boundary (every kServeChunk requests, plus at
  /// each checkpoint clip): once it fires the run throws CancelledError
  /// without serving another chunk.  The matcher is left in its
  /// mid-run state; ledgers up to the last completed chunk are intact.
  CancelToken cancel{};
  /// Called right after each checkpoint row is captured (clock paused), in
  /// grid order, on the thread running the simulation.  Lets a daemon
  /// stream progress without waiting for the RunResult.
  std::function<void(const Checkpoint&)> on_checkpoint{};
};

/// Runs `matcher` (already reset/fresh) over `trace` with chunked replay.
/// `checkpoints` must be non-decreasing; the last entry is clamped to the
/// trace length.  A checkpoint of 0 snapshots the pre-trace (zero-cost)
/// state, which is also how an empty trace yields a ledger.  No request
/// beyond the last checkpoint is served.
RunResult run_simulation(core::OnlineBMatcher& matcher,
                         const trace::Trace& trace,
                         std::vector<std::uint64_t> checkpoints,
                         const RunControl& control = {});

/// Streaming replay: identical semantics, but chunks are pulled from
/// `stream` (which must be unconsumed) instead of a materialized trace —
/// peak memory is one scratch chunk regardless of trace length.  The
/// checkpoint grid is clamped against stream.total().  Chunk production
/// is excluded from wall-clock (it is trace generation).
RunResult run_simulation(core::OnlineBMatcher& matcher,
                         trace::TraceStream& stream,
                         std::vector<std::uint64_t> checkpoints,
                         const RunControl& control = {});

/// Reference scalar replay: one serve() call per request, the historical
/// execution mode.  Kept as the semantic baseline for the batch
/// differential suite and for perf_gate's batched-vs-scalar speedup
/// measurement.  Ledgers are bit-identical to the chunked path.
RunResult run_simulation_scalar(core::OnlineBMatcher& matcher,
                                const trace::Trace& trace,
                                std::vector<std::uint64_t> checkpoints);

/// Convenience: single final checkpoint only.
RunResult run_to_completion(core::OnlineBMatcher& matcher,
                            const trace::Trace& trace);
RunResult run_to_completion(core::OnlineBMatcher& matcher,
                            trace::TraceStream& stream);

}  // namespace rdcn::sim
