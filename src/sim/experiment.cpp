#include "sim/experiment.hpp"

#include "sim/parallel_runner.hpp"
#include "sim/simulator.hpp"

namespace rdcn::sim {

bool is_randomized(const std::string& algorithm) {
  return algorithm == "r_bma";
}

std::vector<RunResult> run_experiment(const ExperimentConfig& config,
                                      const trace::Trace& trace,
                                      const std::vector<ExperimentSpec>& specs) {
  RDCN_ASSERT_MSG(config.distances != nullptr, "config needs distances");
  RDCN_ASSERT_MSG(!trace.empty(), "empty trace");

  // Expand specs into independent (spec, trial) tasks.
  struct Task {
    std::size_t spec_index;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const std::size_t reps =
        is_randomized(specs[s].algorithm) ? config.trials : 1;
    for (std::size_t t = 0; t < reps; ++t)
      tasks.push_back({s, config.base_seed + t});
  }

  const std::vector<std::uint64_t> grid =
      checkpoint_grid(trace.size(), config.checkpoints);

  std::vector<RunResult> raw(tasks.size());
  parallel_for(
      tasks.size(),
      [&](std::size_t i) {
        const Task& task = tasks[i];
        const ExperimentSpec& spec = specs[task.spec_index];
        core::Instance instance;
        instance.distances = config.distances;
        instance.b = spec.b;
        instance.a = config.a;
        instance.alpha = config.alpha;

        core::RBmaOptions rbma = spec.rbma;
        rbma.seed = task.seed;
        auto matcher = core::make_matcher(spec.algorithm, instance, &trace,
                                          task.seed, &rbma);
        RunResult r = run_simulation(*matcher, trace, grid);
        r.seed = task.seed;
        r.algorithm = spec.display();
        raw[i] = std::move(r);
      },
      config.threads);

  // Group by spec and average.
  std::vector<RunResult> out;
  out.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    std::vector<RunResult> group;
    for (std::size_t i = 0; i < tasks.size(); ++i)
      if (tasks[i].spec_index == s) group.push_back(raw[i]);
    out.push_back(average_runs(group));
  }
  return out;
}

}  // namespace rdcn::sim
