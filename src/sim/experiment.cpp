#include "sim/experiment.hpp"

#include <mutex>
#include <optional>

#include "obs/span.hpp"
#include "scenario/registry.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/simulator.hpp"

namespace rdcn::sim {

bool is_randomized(const std::string& algorithm) {
  const scenario::AlgorithmEntry* entry =
      scenario::AlgorithmRegistry::instance().find(algorithm);
  return entry != nullptr && entry->randomized;
}

namespace {

/// Shared driver of both run_experiment overloads: validates the specs,
/// expands them into independent (spec, trial) tasks with deterministic
/// paired seeds, shards the tasks over the persistent ThreadPool, and
/// averages each spec's trials.  `run_one(spec, seed, control)` executes a
/// single trial and may throw (first error is rethrown on the calling
/// thread); `control` carries the config's cancellation token and a
/// per-trial checkpoint hook bound to the task's spec and seed.
template <typename RunOne>
std::vector<RunResult> run_tasks(const ExperimentConfig& config,
                                 const std::vector<ExperimentSpec>& specs,
                                 const RunOne& run_one) {
  RDCN_ASSERT_MSG(config.distances != nullptr, "config needs distances");

  // Fail fast on unknown algorithm names / parameters before any trial
  // spends work (and on this thread, where SpecError can propagate).
  const scenario::AlgorithmRegistry& registry =
      scenario::AlgorithmRegistry::instance();
  for (const ExperimentSpec& spec : specs)
    registry.validate({spec.algorithm, spec.params});

  // Expand specs into independent (spec, trial) tasks.  Seeds derive
  // deterministically from the config alone (base_seed + trial), and trial
  // t uses the same seed for every algorithm/b column (paired seeds), so
  // a sweep's results are identical for any thread count or completion
  // order.
  struct Task {
    std::size_t spec_index;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const std::size_t reps =
        is_randomized(specs[s].algorithm) ? config.trials : 1;
    for (std::size_t t = 0; t < reps; ++t)
      tasks.push_back({s, config.base_seed + t});
  }

  // parallel_for tasks must not throw; capture the first construction
  // error (e.g. a required parameter a custom entry forgot to default)
  // and rethrow it on the calling thread.  Cancellations are captured
  // separately — a cancelled run is the caller's own doing, not a spec
  // problem, and reports as CancelledError.
  std::mutex error_mutex;
  std::string error;
  bool failed = false;
  std::string cancel_message;

  std::vector<RunResult> raw(tasks.size());
  parallel_for(
      tasks.size(),
      [&](std::size_t i) {
        const Task& task = tasks[i];
        const ExperimentSpec& spec = specs[task.spec_index];
        RunControl control;
        control.cancel = config.cancel;
        if (config.on_checkpoint) {
          control.on_checkpoint = [&config, &spec,
                                   seed = task.seed](const Checkpoint& c) {
            config.on_checkpoint(spec, seed, c);
          };
        }
        try {
          // Per-algorithm phase: "algo.<name>" under whatever span the
          // caller holds (the daemon's serve.execute, rdcn_sim's run).
          // Name building and interning only happen while profiling.
          std::optional<obs::ObsSpan> algo_span;
          if (obs::tracing_enabled())
            algo_span.emplace(
                obs::intern_span_name("algo." + spec.algorithm));
          RunResult r = run_one(spec, task.seed, control);
          r.seed = task.seed;
          r.algorithm = spec.display();
          raw[i] = std::move(r);
        } catch (const CancelledError& e) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          cancel_message = e.what();
        } catch (const std::exception& e) {
          // Any escape would hit parallel_for's no-throw contract and
          // terminate; downstream-registered builders may throw more than
          // SpecError.
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!failed) error = e.what();
          failed = true;
        }
      },
      config.threads, config.cancel);
  if (config.cancel.cancelled())
    throw CancelledError(!cancel_message.empty()
                             ? cancel_message
                             : std::string("experiment cancelled"));
  if (failed) throw SpecError(error);

  // Group by spec and average.
  std::vector<RunResult> out;
  out.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    std::vector<RunResult> group;
    for (std::size_t i = 0; i < tasks.size(); ++i)
      if (tasks[i].spec_index == s) group.push_back(raw[i]);
    out.push_back(average_runs(group));
  }
  return out;
}

core::Instance make_instance(const ExperimentConfig& config,
                             const ExperimentSpec& spec) {
  core::Instance instance;
  instance.distances = config.distances;
  instance.b = spec.b;
  instance.a = config.a;
  instance.alpha = config.alpha;
  return instance;
}

}  // namespace

std::vector<RunResult> run_experiment(const ExperimentConfig& config,
                                      const trace::Trace& trace,
                                      const std::vector<ExperimentSpec>& specs) {
  RDCN_ASSERT_MSG(!trace.empty(), "empty trace");
  const scenario::AlgorithmRegistry& registry =
      scenario::AlgorithmRegistry::instance();
  const std::vector<std::uint64_t> grid =
      checkpoint_grid(trace.size(), config.checkpoints);
  return run_tasks(
      config, specs,
      [&](const ExperimentSpec& spec, std::uint64_t seed,
          const RunControl& control) {
        auto matcher = registry.make({spec.algorithm, spec.params},
                                     make_instance(config, spec), &trace,
                                     seed);
        return run_simulation(*matcher, trace, grid, control);
      });
}

std::vector<RunResult> run_experiment(const ExperimentConfig& config,
                                      const StreamFactory& make_stream,
                                      const std::vector<ExperimentSpec>& specs) {
  RDCN_ASSERT_MSG(make_stream != nullptr, "null stream factory");
  const scenario::AlgorithmRegistry& registry =
      scenario::AlgorithmRegistry::instance();
  return run_tasks(
      config, specs,
      [&](const ExperimentSpec& spec, std::uint64_t seed,
          const RunControl& control) {
        // full_trace = nullptr: offline comparators raise SpecError here —
        // a stream cannot hand them the whole trace up front.
        auto matcher = registry.make({spec.algorithm, spec.params},
                                     make_instance(config, spec), nullptr,
                                     seed);
        auto stream = make_stream();
        RDCN_ASSERT_MSG(stream != nullptr && stream->produced() == 0,
                        "stream factory must yield fresh streams");
        const std::vector<std::uint64_t> grid =
            checkpoint_grid(stream->total(), config.checkpoints);
        return run_simulation(*matcher, *stream, grid, control);
      });
}

}  // namespace rdcn::sim
