#include "sim/report.hpp"

#include <iomanip>
#include <iterator>
#include <ostream>

#include "common/assert.hpp"
#include "common/param_map.hpp"
#include "scenario/registry.hpp"

namespace rdcn::sim {

namespace {

constexpr Metric kAllMetrics[] = {
    Metric::kRoutingCost,    Metric::kTotalCost,    Metric::kWallSeconds,
    Metric::kMatchingSize,   Metric::kDirectFraction,
    Metric::kReconfigCost,
};
// A new Metric member must be added to kAllMetrics or it silently
// disappears from the generated help and parse_metric.
static_assert(std::size(kAllMetrics) ==
              static_cast<std::size_t>(Metric::kReconfigCost) + 1);

}  // namespace

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kRoutingCost: return "routing_cost";
    case Metric::kTotalCost: return "total_cost";
    case Metric::kWallSeconds: return "wall_seconds";
    case Metric::kMatchingSize: return "matching_size";
    case Metric::kDirectFraction: return "direct_fraction";
    case Metric::kReconfigCost: return "reconfig_cost";
  }
  return "unknown";
}

const std::vector<std::string>& metric_names() {
  static const std::vector<std::string>* names = [] {
    auto* out = new std::vector<std::string>();
    for (const Metric m : kAllMetrics) out->push_back(metric_name(m));
    return out;
  }();
  return *names;
}

Metric parse_metric(const std::string& name) {
  for (const Metric m : kAllMetrics)
    if (metric_name(m) == name) return m;
  std::string msg = "unknown metric '" + name + "'";
  const std::string suggestion =
      scenario::nearest_name(name, metric_names());
  if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
  std::string known;
  for (const std::string& n : metric_names())
    known += (known.empty() ? "" : ", ") + n;
  throw SpecError(msg + "; known: " + known);
}

double metric_value(const Checkpoint& c, Metric metric) {
  switch (metric) {
    case Metric::kRoutingCost: return static_cast<double>(c.routing_cost);
    case Metric::kTotalCost: return static_cast<double>(c.total_cost);
    case Metric::kWallSeconds: return c.wall_seconds;
    case Metric::kMatchingSize: return static_cast<double>(c.matching_size);
    case Metric::kDirectFraction:
      return c.requests == 0 ? 0.0
                             : static_cast<double>(c.direct_serves) /
                                   static_cast<double>(c.requests);
    case Metric::kReconfigCost: return static_cast<double>(c.reconfig_cost);
  }
  return 0.0;
}

namespace {

void check_common_grid(const std::vector<RunResult>& results) {
  RDCN_ASSERT_MSG(!results.empty(), "no results to report");
  const std::size_t points = results.front().checkpoints.size();
  for (const RunResult& r : results) {
    RDCN_ASSERT_MSG(r.checkpoints.size() == points,
                    "results have differing checkpoint grids");
  }
}

}  // namespace

void print_table(std::ostream& out, const std::vector<RunResult>& results,
                 Metric metric, const std::string& title) {
  check_common_grid(results);
  out << "== " << title << " [" << metric_name(metric) << "] ==\n";
  out << std::setw(12) << "requests";
  for (const RunResult& r : results) {
    out << std::setw(22) << r.algorithm;
  }
  out << "\n";
  const std::size_t points = results.front().checkpoints.size();
  out << std::fixed;
  for (std::size_t p = 0; p < points; ++p) {
    out << std::setw(12) << results.front().checkpoints[p].requests;
    for (const RunResult& r : results) {
      const double v = metric_value(r.checkpoints[p], metric);
      if (metric == Metric::kWallSeconds || metric == Metric::kDirectFraction)
        out << std::setw(22) << std::setprecision(4) << v;
      else
        out << std::setw(22) << std::setprecision(0) << v;
    }
    out << "\n";
  }
  out << "\n";
}

void write_csv(std::ostream& out, const std::vector<RunResult>& results,
               Metric metric) {
  check_common_grid(results);
  out << "requests";
  for (const RunResult& r : results) out << "," << r.algorithm;
  out << "\n";
  const std::size_t points = results.front().checkpoints.size();
  for (std::size_t p = 0; p < points; ++p) {
    out << results.front().checkpoints[p].requests;
    for (const RunResult& r : results)
      out << "," << metric_value(r.checkpoints[p], metric);
    out << "\n";
  }
}

void print_summary(std::ostream& out, const std::vector<RunResult>& results,
                   const RunResult& baseline) {
  const double base_cost =
      static_cast<double>(baseline.final().routing_cost);
  out << "== summary (vs " << baseline.algorithm << ") ==\n";
  for (const RunResult& r : results) {
    const Checkpoint& f = r.final();
    const double reduction =
        base_cost > 0.0
            ? 100.0 * (1.0 - static_cast<double>(f.routing_cost) / base_cost)
            : 0.0;
    out << "  " << std::left << std::setw(24) << r.algorithm << std::right
        << " routing=" << std::setw(12) << f.routing_cost
        << "  reduction=" << std::fixed << std::setprecision(1)
        << std::setw(6) << reduction << "%"
        << "  reconfig=" << std::setw(10) << f.reconfig_cost
        << "  time=" << std::setprecision(3) << std::setw(8) << f.wall_seconds
        << "s\n";
  }
  out << "\n";
}

}  // namespace rdcn::sim
