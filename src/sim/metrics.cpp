#include "sim/metrics.hpp"

#include <algorithm>
#include <limits>

namespace rdcn::sim {

RunResult average_runs(const std::vector<RunResult>& runs) {
  RDCN_ASSERT_MSG(!runs.empty(), "cannot average zero runs");
  RunResult avg = runs.front();
  const std::size_t points = avg.checkpoints.size();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    RDCN_ASSERT_MSG(runs[i].checkpoints.size() == points,
                    "checkpoint grids differ between runs");
  }
  for (std::size_t p = 0; p < points; ++p) {
    // Accumulate in double to avoid overflow, round back at the end.
    double routing = 0, reconfig = 0, total = 0, direct = 0, adds = 0,
           removals = 0, msize = 0, wall = 0;
    for (const RunResult& r : runs) {
      const Checkpoint& c = r.checkpoints[p];
      RDCN_ASSERT(c.requests == avg.checkpoints[p].requests);
      routing += static_cast<double>(c.routing_cost);
      reconfig += static_cast<double>(c.reconfig_cost);
      total += static_cast<double>(c.total_cost);
      direct += static_cast<double>(c.direct_serves);
      adds += static_cast<double>(c.edge_adds);
      removals += static_cast<double>(c.edge_removals);
      msize += static_cast<double>(c.matching_size);
      wall += c.wall_seconds;
    }
    const double k = static_cast<double>(runs.size());
    Checkpoint& c = avg.checkpoints[p];
    c.routing_cost = static_cast<std::uint64_t>(routing / k + 0.5);
    c.reconfig_cost = static_cast<std::uint64_t>(reconfig / k + 0.5);
    c.total_cost = static_cast<std::uint64_t>(total / k + 0.5);
    c.direct_serves = static_cast<std::uint64_t>(direct / k + 0.5);
    c.edge_adds = static_cast<std::uint64_t>(adds / k + 0.5);
    c.edge_removals = static_cast<std::uint64_t>(removals / k + 0.5);
    c.matching_size = static_cast<std::size_t>(msize / k + 0.5);
    c.wall_seconds = wall / k;
  }
  avg.seed = 0;
  return avg;
}

SeriesSummary summarize_total_cost(const std::vector<RunResult>& runs) {
  RDCN_ASSERT(!runs.empty());
  const std::size_t points = runs.front().checkpoints.size();
  SeriesSummary s;
  s.mean.assign(points, 0.0);
  s.lo.assign(points, 0.0);
  s.hi.assign(points, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    double sum = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (const RunResult& r : runs) {
      const auto v = static_cast<double>(r.checkpoints[p].total_cost);
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    s.mean[p] = sum / static_cast<double>(runs.size());
    s.lo[p] = lo;
    s.hi[p] = hi;
  }
  return s;
}

}  // namespace rdcn::sim
