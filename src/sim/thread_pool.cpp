#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "obs/metrics.hpp"

namespace rdcn::sim {

namespace {
thread_local bool t_on_pool_worker = false;

/// Pool metrics live in the process-wide registry: the pool is a
/// singleton, and test assertions use deltas, never absolute values.
struct PoolMetrics {
  obs::Gauge& workers;
  obs::Gauge& queue_depth;
  obs::Counter& jobs;
  obs::Counter& inline_jobs;
  obs::Counter& indices;
  obs::Histogram& wait;  ///< publish -> first index claimed
  obs::Histogram& run;   ///< publish -> all indices drained (owner view)

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().gauge("rdcn_pool_workers",
                                      "Worker threads in the process pool"),
        obs::Registry::global().gauge("rdcn_pool_queue_depth",
                                      "Parallel jobs currently published"),
        obs::Registry::global().counter(
            "rdcn_pool_jobs_total", "Parallel jobs drained through the pool"),
        obs::Registry::global().counter(
            "rdcn_pool_inline_jobs_total",
            "Parallel regions executed inline (nested or single-index)"),
        obs::Registry::global().counter("rdcn_pool_indices_total",
                                        "Job indices executed"),
        obs::Registry::global().latency_histogram(
            "rdcn_pool_job_wait_seconds",
            "Publish-to-first-claim latency of pooled jobs"),
        obs::Registry::global().latency_histogram(
            "rdcn_pool_job_run_seconds",
            "Publish-to-drained latency of pooled jobs")};
    return m;
  }
};
}  // namespace

struct ThreadPool::Job {
  Body body;
  void* ctx;
  std::size_t count;
  const std::atomic<bool>* cancel;     ///< nullptr = not cancellable
  std::atomic<std::size_t> cursor{0};  ///< next index to claim
  std::atomic<std::size_t> done{0};    ///< indices fully executed
  std::atomic<std::int64_t> slots;     ///< worker participation slots left
  std::atomic<std::size_t> active{0};  ///< workers currently draining
  std::uint64_t publish_ns = 0;        ///< set by run() before publishing
  std::atomic<bool> claimed{false};    ///< first index claimed (wait metric)
  std::mutex m;
  std::condition_variable cv;

  Job(Body b, void* c, std::size_t n, std::int64_t worker_slots,
      const std::atomic<bool>* cancel_flag)
      : body(b), ctx(c), count(n), cancel(cancel_flag), slots(worker_slots) {}

  bool finished() const noexcept {
    return done.load(std::memory_order_acquire) == count &&
           active.load(std::memory_order_acquire) == 0;
  }
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool(std::size_t num_workers) {
  if (num_workers == 0) {
    num_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  threads_spawned_ = num_workers;
  // Last-constructed pool wins the gauge; in practice only the
  // process-wide instance() pool exists outside pool-specific tests.
  PoolMetrics::get().workers.set(static_cast<std::int64_t>(num_workers));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_pool_worker; }

std::uint64_t ThreadPool::jobs_completed() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_completed_;
}

void ThreadPool::drain(Job& job) {
  while (true) {
    const std::size_t i = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    if (!job.claimed.load(std::memory_order_relaxed) &&
        !job.claimed.exchange(true, std::memory_order_relaxed)) {
      PoolMetrics::get().wait.observe_ns(monotonic_now_ns() - job.publish_ns);
    }
    // A cancelled job fast-forwards: remaining indices are still claimed
    // and accounted (so the owner's completion predicate holds and the job
    // leaves the queue normally) but their bodies never run.
    if (job.cancel == nullptr ||
        !job.cancel->load(std::memory_order_acquire)) {
      job.body(job.ctx, i);
    }
    job.done.fetch_add(1, std::memory_order_release);
  }
}

ThreadPool::Job* ThreadPool::try_claim_locked() {
  for (Job* job : queue_) {
    if (job->cursor.load(std::memory_order_relaxed) >= job->count) continue;
    if (job->slots.fetch_sub(1, std::memory_order_relaxed) > 0) return job;
    job->slots.fetch_add(1, std::memory_order_relaxed);  // over-subscribed
  }
  return nullptr;
}

void ThreadPool::worker_main() {
  t_on_pool_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    Job* job = try_claim_locked();
    if (job == nullptr) {
      cv_.wait(lock);
      continue;
    }
    job->active.fetch_add(1, std::memory_order_acq_rel);
    lock.unlock();
    drain(*job);
    {
      // The decrement and the wakeup must both happen under job->m, and
      // nothing may touch the job afterwards: the owner destroys the
      // stack-allocated Job as soon as its predicate holds, and it can
      // only re-acquire job->m after we release it here.
      std::lock_guard<std::mutex> g(job->m);
      job->active.fetch_sub(1, std::memory_order_acq_rel);
      job->cv.notify_all();
    }
    lock.lock();
  }
}

void ThreadPool::run(std::size_t count, std::size_t max_parallelism,
                     Body body, void* ctx, const std::atomic<bool>* cancel) {
  if (count == 0) return;
  // Inline execution when parallelism cannot help — or when called from a
  // pool worker (a nested blocking job would risk self-deadlock).
  if (count == 1 || max_parallelism <= 1 || workers_.empty() ||
      t_on_pool_worker) {
    PoolMetrics& metrics = PoolMetrics::get();
    metrics.inline_jobs.inc();
    metrics.indices.add(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->load(std::memory_order_acquire))
        return;
      body(ctx, i);
    }
    return;
  }

  // The owner participates, so hand out one slot fewer to the workers.
  PoolMetrics& metrics = PoolMetrics::get();
  Job job(body, ctx, count,
          static_cast<std::int64_t>(max_parallelism) - 1, cancel);
  job.publish_ns = monotonic_now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(&job);
    metrics.queue_depth.add(1);
  }
  cv_.notify_all();

  drain(job);

  // All indices are claimed once the owner's drain returns, so the job can
  // leave the queue; workers already inside it are tracked via `active`.
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.erase(std::find(queue_.begin(), queue_.end(), &job));
    ++jobs_completed_;
    metrics.queue_depth.add(-1);
    metrics.jobs.inc();
    metrics.indices.add(count);
  }
  std::unique_lock<std::mutex> jl(job.m);
  job.cv.wait(jl, [&] { return job.finished(); });
  metrics.run.observe_ns(monotonic_now_ns() - job.publish_ns);
}

}  // namespace rdcn::sim
