// rdcn: measurement records produced by the simulator.
//
// A run is summarized as a series of checkpoints — cumulative cost and
// wall-clock snapshots at increasing request counts — which is exactly the
// x/y structure of the paper's figures (routing cost vs #requests,
// execution time vs #requests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace rdcn::sim {

struct Checkpoint {
  std::uint64_t requests = 0;
  std::uint64_t routing_cost = 0;
  std::uint64_t reconfig_cost = 0;
  std::uint64_t total_cost = 0;
  std::uint64_t direct_serves = 0;
  std::uint64_t edge_adds = 0;
  std::uint64_t edge_removals = 0;
  std::size_t matching_size = 0;
  double wall_seconds = 0.0;  ///< algorithm time only (serve() loop)
};

struct RunResult {
  std::string algorithm;
  std::string trace_name;
  std::size_t b = 0;
  std::uint64_t seed = 0;
  std::vector<Checkpoint> checkpoints;

  const Checkpoint& final() const {
    RDCN_ASSERT(!checkpoints.empty());
    return checkpoints.back();
  }
};

/// Mean of several runs (same checkpoint grid required); used for the
/// paper's "each simulation is repeated five times and averaged".
RunResult average_runs(const std::vector<RunResult>& runs);

/// Aggregate of a y-series across runs with mean and min/max envelope
/// (diagnostic output for randomized algorithms).
struct SeriesSummary {
  std::vector<double> mean;
  std::vector<double> lo;
  std::vector<double> hi;
};

SeriesSummary summarize_total_cost(const std::vector<RunResult>& runs);

}  // namespace rdcn::sim
