// rdcn: parameter-sweep experiment driver.
//
// Encodes the paper's methodology (§3.1): a fixed trace, a set of
// algorithm/b combinations, each randomized combination repeated `trials`
// times with distinct seeds and averaged.  Trials run in parallel (each
// trial owns its matcher and RNG stream); deterministic algorithms run a
// single trial since repetition would be a no-op.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/param_map.hpp"
#include "net/distance_matrix.hpp"
#include "sim/metrics.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stream.hpp"

namespace rdcn::sim {

struct ExperimentSpec {
  std::string algorithm;  ///< scenario::AlgorithmRegistry name ("r_bma", ...)
  std::size_t b = 1;
  ParamMap params{};  ///< algorithm parameters ("engine=lru,eager", ...)
  std::string label;  ///< display label; default "<algorithm>(b=<b>)"

  std::string display() const {
    return !label.empty()
               ? label
               : algorithm + "(b=" + std::to_string(b) + ")";
  }
};

struct ExperimentConfig {
  const net::DistanceMatrix* distances = nullptr;
  std::uint64_t alpha = 100;
  std::size_t a = 0;          ///< offline degree bound (0 = same as b)
  std::size_t checkpoints = 8;
  std::size_t trials = 5;     ///< repetitions for randomized algorithms
  std::uint64_t base_seed = 42;
  std::size_t threads = 0;    ///< 0 = hardware concurrency

  /// Cooperative cancellation (serving mode).  Once the token fires, tasks
  /// not yet started are skipped and running trials stop at their next
  /// serve-chunk boundary; run_experiment then throws CancelledError
  /// instead of returning partial averages.  Inert by default.
  CancelToken cancel{};
  /// Optional progress stream: called for every checkpoint of every trial,
  /// possibly from several pool workers at once (must be thread-safe).
  std::function<void(const ExperimentSpec& spec, std::uint64_t seed,
                     const Checkpoint& checkpoint)>
      on_checkpoint{};
};

/// Whether an algorithm's behaviour depends on its seed (from its
/// AlgorithmRegistry entry; unknown names are treated as deterministic).
bool is_randomized(const std::string& algorithm);

/// Runs every spec over `trace`; returns one (trial-averaged) RunResult per
/// spec, in spec order.
std::vector<RunResult> run_experiment(const ExperimentConfig& config,
                                      const trace::Trace& trace,
                                      const std::vector<ExperimentSpec>& specs);

/// Factory producing a fresh, unconsumed stream of the workload.  Called
/// once per (spec, trial) task — possibly from several pool workers at
/// once, so it must be thread-safe (the registry stream builders are: they
/// snapshot their RNG instead of sharing it).
using StreamFactory = std::function<std::unique_ptr<trace::TraceStream>()>;

/// Streaming variant: same trial expansion, seeds, and averaging as the
/// trace overload — and identical ledgers when the factory's streams
/// replay the same request sequence — but peak memory is one serve chunk
/// per worker regardless of trace length.  Offline algorithms
/// (needs_full_trace) raise SpecError: a stream cannot hand them the
/// complete trace up front.
std::vector<RunResult> run_experiment(const ExperimentConfig& config,
                                      const StreamFactory& make_stream,
                                      const std::vector<ExperimentSpec>& specs);

}  // namespace rdcn::sim
