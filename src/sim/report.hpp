// rdcn: tabular reporters for experiment results.
//
// The bench binaries print the exact series the paper plots: one row per
// checkpoint (x = #requests), one column per algorithm (y = routing cost
// or execution time).  CSV writers emit the same data for re-plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/metrics.hpp"

namespace rdcn::sim {

/// Which y-value a table reports.
enum class Metric {
  kRoutingCost,
  kTotalCost,
  kWallSeconds,
  kMatchingSize,
  kDirectFraction,
  kReconfigCost,
};

std::string metric_name(Metric metric);

/// All metric names in enum order — drives generated CLI help/validation.
const std::vector<std::string>& metric_names();

/// Inverse of metric_name; throws SpecError (with a nearest-match
/// suggestion) on unknown names.
Metric parse_metric(const std::string& name);

double metric_value(const Checkpoint& c, Metric metric);

/// Pretty-prints a fixed-width table: header = algorithm labels, one row
/// per checkpoint.  All results must share a checkpoint grid.
void print_table(std::ostream& out, const std::vector<RunResult>& results,
                 Metric metric, const std::string& title);

/// Machine-readable CSV of the same table.
void write_csv(std::ostream& out, const std::vector<RunResult>& results,
               Metric metric);

/// One-line summary per result: final cost, reduction vs the given
/// baseline result (the paper quotes "routing cost reduction of up to 35%"
/// against Oblivious), wall time.
void print_summary(std::ostream& out, const std::vector<RunResult>& results,
                   const RunResult& baseline);

}  // namespace rdcn::sim
