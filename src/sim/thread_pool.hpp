// rdcn: the persistent worker pool behind parallel_for/parallel_map.
//
// The experiment driver fans hundreds of independent trials out to every
// core; spawning and joining a fresh std::thread set per parallel_for call
// put thread start-up latency on the request path of every sweep.  This
// pool starts its workers exactly once (lazily, on first use) and reuses
// them for every subsequent parallel region — `threads_spawned()` stays
// constant for the lifetime of the process, which the thread-pool stress
// test pins down.
//
// Execution model: a blocking parallel-for.  The caller publishes a Job
// (an atomic cursor over [0, count)), participates in draining it, and
// blocks until every index completed.  Workers race on the cursor; there
// is no per-index queueing, no allocation, and no std::function — the body
// is a plain function pointer + context supplied by the templated
// parallel_for trampoline, so user lambdas are inlined into the trampoline.
//
// Concurrent run() calls from distinct caller threads are safe (jobs
// queue); nested run() from inside a worker executes inline on the calling
// worker to avoid self-deadlock.  Job bodies must not throw.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace rdcn::sim {

class ThreadPool {
 public:
  /// Job body: invoked as body(ctx, i) for each index i.
  using Body = void (*)(void*, std::size_t);

  /// The process-wide pool (hardware-concurrency workers), started once on
  /// first use and reused by every parallel_for/parallel_map call.
  static ThreadPool& instance();

  /// `num_workers` 0 = hardware concurrency.
  explicit ThreadPool(std::size_t num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const noexcept { return workers_.size(); }

  /// Lifetime count of OS threads this pool ever spawned.  Equals
  /// num_workers() right after construction and never changes — the
  /// regression hook proving no thread is spawned per parallel region.
  std::uint64_t threads_spawned() const noexcept { return threads_spawned_; }

  /// Number of parallel jobs run() has completed (diagnostics).
  std::uint64_t jobs_completed() const noexcept;

  /// Blocking parallel-for: runs body(ctx, i) for i in [0, count) on up to
  /// `max_parallelism` threads (the caller participates and counts toward
  /// the limit).  Returns after every index completed.
  ///
  /// `cancel` (optional) is a cooperative cancellation flag polled before
  /// each index: once it reads true, remaining indices are claimed but NOT
  /// executed, so the job drains immediately and its worker slots free up.
  /// Indices already executing run to completion — the body itself decides
  /// whether to poll the same flag at finer granularity.  The flag must
  /// outlive the run() call.
  void run(std::size_t count, std::size_t max_parallelism, Body body,
           void* ctx, const std::atomic<bool>* cancel = nullptr);

  /// True iff the calling thread is a worker of *some* ThreadPool.
  static bool on_worker_thread() noexcept;

 private:
  struct Job;

  void worker_main();
  /// Scans the queue for a job with unclaimed indices and a free
  /// participation slot; claims one.  Requires mu_ held.
  Job* try_claim_locked();
  static void drain(Job& job);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job*> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::uint64_t threads_spawned_ = 0;
  std::uint64_t jobs_completed_ = 0;
};

}  // namespace rdcn::sim
