#include "sim/parallel_runner.hpp"

#include <algorithm>

namespace rdcn::sim {

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t num_threads) {
  if (count == 0) return;
  std::size_t workers = num_threads != 0
                            ? num_threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, count);

  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
}

}  // namespace rdcn::sim
