// rdcn: Facebook-like datacenter cluster workloads.
//
// The paper (§3.1) evaluates on production traces from three Facebook
// clusters (Roy et al., SIGCOMM'15): a database cluster (SQL serving), a
// web-service cluster, and a Hadoop batch cluster.  Those traces are not
// publicly redistributable, so this module synthesizes traces that match
// the properties the paper (and Avin et al., SIGMETRICS'20, which the paper
// cites for trace structure) relies on:
//
//   database     strong spatial skew and strong temporal locality —
//                few rack pairs dominate and repeat in long bursts
//                (cache-friendly; where demand-aware matchings shine),
//   web service  mild skew, short bursts, wide active working set —
//                traffic spread broadly across many rack pairs,
//   hadoop       elephant/mice mixture with pronounced bursts from shuffle
//                stages, moderate skew, plus working-set drift across job
//                waves.
//
// The generators are deliberately simple compositions of the primitives in
// generators.hpp so every knob is auditable.  See DESIGN.md §3 for the
// substitution argument.
#pragma once

#include "common/rng.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace rdcn::trace {

enum class FacebookCluster {
  kDatabase,
  kWebService,
  kHadoop,
};

/// Human-readable cluster name ("database" | "web" | "hadoop").
const char* facebook_cluster_name(FacebookCluster cluster);

/// Flow-pool parameters modelling the given cluster on `num_racks` racks.
FlowPoolParams facebook_params(FacebookCluster cluster,
                               std::size_t num_racks);

/// Generates a synthetic trace for one Facebook-like cluster.
/// The paper uses num_racks = 100 and trace lengths of 3.5e5 (database),
/// 4.0e5 (web service), and 1.85e5 (hadoop) requests.
Trace generate_facebook_like(FacebookCluster cluster, std::size_t num_racks,
                             std::size_t num_requests, Xoshiro256& rng);

/// Streaming twin of generate_facebook_like (chunked production, RNG
/// snapshotted; see trace/trace_stream.hpp).
std::unique_ptr<TraceStream> stream_facebook_like(FacebookCluster cluster,
                                                  std::size_t num_racks,
                                                  std::size_t num_requests,
                                                  const Xoshiro256& rng);

}  // namespace rdcn::trace
