// rdcn: elementary synthetic workload generators.
//
// These are the building blocks for the Facebook-like and Microsoft-like
// cluster models (facebook_like.hpp / microsoft_like.hpp) and are exposed
// directly for controlled experiments: each generator isolates one property
// (spatial skew, temporal burstiness, adversarial structure, ...) so
// ablations can vary a single axis.
// Every generator is implemented as a per-request *emitter* consumed by two
// front ends: generate_* drains it into a materialized Trace (advancing the
// caller's RNG exactly as before), and stream_* wraps it in a TraceStream
// that owns a snapshot of the RNG and produces the identical request
// sequence chunk by chunk — without ever holding the full trace in memory.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stream.hpp"

namespace rdcn::trace {

/// Uniform i.i.d. pairs — no structure at all (the hardest case for any
/// demand-aware scheme; both BMA and R-BMA degrade to Oblivious).
Trace generate_uniform(std::size_t num_racks, std::size_t num_requests,
                       Xoshiro256& rng);

/// Zipf-skewed i.i.d. pairs: pairs ranked by a random permutation, request
/// probability proportional to 1/rank^s.  Pure spatial skew, zero temporal
/// structure.
Trace generate_zipf_pairs(std::size_t num_racks, std::size_t num_requests,
                          double skew, Xoshiro256& rng);

/// Hotspot: a fraction `hot_fraction` of racks receive `hot_share` of all
/// traffic (incast/outcast-style concentration).
Trace generate_hotspot(std::size_t num_racks, std::size_t num_requests,
                       double hot_fraction, double hot_share,
                       Xoshiro256& rng);

/// Fixed permutation traffic: rack i talks only to π(i) — the best case
/// for a b-matching (a single matching covers everything).
Trace generate_permutation(std::size_t num_racks, std::size_t num_requests,
                           Xoshiro256& rng);

/// Parameters of the flow-pool generator: a pool of concurrently active
/// "flows" (rack pairs emitting bursts).  Each step either starts a new
/// flow (probability `new_flow_prob`, pair drawn from a Zipf popularity
/// over a fixed candidate pair set) or continues a uniformly random active
/// flow.  Flow lengths are geometric with mean `mean_burst_length`.
/// Every `drift_period` requests, a random `drift_fraction` of the
/// candidate pair set is replaced (working-set drift).
struct FlowPoolParams {
  std::size_t candidate_pairs = 1000;  ///< size of the popular-pair universe
  double zipf_skew = 1.0;              ///< spatial skew over candidates
  double mean_burst_length = 20.0;     ///< temporal locality knob
  std::size_t max_active_flows = 50;   ///< interleaving degree
  double new_flow_prob = 0.05;         ///< flow arrival intensity
  std::size_t drift_period = 0;        ///< 0 = no drift
  double drift_fraction = 0.1;
  /// Hub structure: a fraction of racks is designated "hot"; candidate
  /// pair endpoints are drawn from the hot set with probability hub_bias
  /// (per endpoint).  Concentrating demand on few racks creates per-rack
  /// degree contention — the regime where the cache size b matters.
  double hub_fraction = 0.0;  ///< 0 disables hub structure
  double hub_bias = 0.8;
  /// Background noise: fraction of requests drawn uniformly from ALL rack
  /// pairs (scattered one-off traffic no matching can capture — real
  /// traces have a long tail of such pairs, which caps the achievable
  /// routing-cost reduction).
  double noise_fraction = 0.0;
};

/// The main structured generator: spatial skew + temporal burstiness +
/// optional working-set drift.  This is the model behind the Facebook-like
/// cluster profiles.
Trace generate_flow_pool(std::size_t num_racks, std::size_t num_requests,
                         const FlowPoolParams& params, Xoshiro256& rng);

/// Elephants and mice: `num_elephants` heavy pairs carry `elephant_share`
/// of the traffic in long runs; the rest is uniform mice.  Models
/// Hadoop-style shuffle traffic.
Trace generate_elephant_mice(std::size_t num_racks, std::size_t num_requests,
                             std::size_t num_elephants, double elephant_share,
                             double mean_run_length, Xoshiro256& rng);

/// Adversarial round-robin over k+1 pairs sharing a common rack (the star
/// lower-bound shape of Lemma 1 projected onto a general topology): cycles
/// 0-1, 0-2, ..., 0-(k+1), repeating.  Forces eviction churn at rack 0 for
/// any online algorithm with degree cap b <= k.
Trace generate_round_robin_star(std::size_t num_racks,
                                std::size_t num_requests, std::size_t k);

/// Streaming twins: each produces bit-identically the request sequence of
/// its generate_* counterpart seeded with the same RNG state, but in
/// chunks (the rng parameter is snapshotted; the caller's generator is not
/// advanced).  Generator setup (pair tables, samplers) happens at stream
/// construction; per-request state is O(active flows), not O(requests).
std::unique_ptr<TraceStream> stream_uniform(std::size_t num_racks,
                                            std::size_t num_requests,
                                            const Xoshiro256& rng);
std::unique_ptr<TraceStream> stream_zipf_pairs(std::size_t num_racks,
                                               std::size_t num_requests,
                                               double skew,
                                               const Xoshiro256& rng);
std::unique_ptr<TraceStream> stream_hotspot(std::size_t num_racks,
                                            std::size_t num_requests,
                                            double hot_fraction,
                                            double hot_share,
                                            const Xoshiro256& rng);
std::unique_ptr<TraceStream> stream_permutation(std::size_t num_racks,
                                                std::size_t num_requests,
                                                const Xoshiro256& rng);
std::unique_ptr<TraceStream> stream_flow_pool(std::size_t num_racks,
                                              std::size_t num_requests,
                                              const FlowPoolParams& params,
                                              const Xoshiro256& rng);
std::unique_ptr<TraceStream> stream_elephant_mice(
    std::size_t num_racks, std::size_t num_requests,
    std::size_t num_elephants, double elephant_share, double mean_run_length,
    const Xoshiro256& rng);
std::unique_ptr<TraceStream> stream_round_robin_star(std::size_t num_racks,
                                                     std::size_t num_requests,
                                                     std::size_t k);

}  // namespace rdcn::trace
