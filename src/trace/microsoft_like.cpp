#include "trace/microsoft_like.hpp"

#include <algorithm>
#include <cmath>

namespace rdcn::trace {

std::vector<double> make_microsoft_matrix(std::size_t num_racks,
                                          const MicrosoftParams& params,
                                          Xoshiro256& rng) {
  RDCN_ASSERT(num_racks >= 2);
  // Per-rack activity weights: power law over a random rack permutation.
  std::vector<double> activity(num_racks);
  std::vector<std::size_t> rank(num_racks);
  for (std::size_t i = 0; i < num_racks; ++i) rank[i] = i;
  shuffle(rank.begin(), rank.end(), rng);
  for (std::size_t i = 0; i < num_racks; ++i)
    activity[i] =
        1.0 / std::pow(static_cast<double>(rank[i] + 1), params.rack_skew);

  // Gravity model: weight(u,v) proportional to activity(u) * activity(v).
  std::vector<double> w(num_racks * num_racks, 0.0);
  for (std::size_t u = 0; u < num_racks; ++u)
    for (std::size_t v = u + 1; v < num_racks; ++v)
      w[u * num_racks + v] = activity[u] * activity[v];

  // Elephant entries: lift a few random off-diagonal cells to a fixed
  // multiple of the MEAN cell weight.  (An absolute lift, not a
  // multiplicative one: multiplying the already-heaviest gravity cells
  // would let a single pair dominate the whole matrix.)
  double mean_cell = 0.0;
  const std::size_t num_cells = num_racks * (num_racks - 1) / 2;
  for (std::size_t u = 0; u < num_racks; ++u)
    for (std::size_t v = u + 1; v < num_racks; ++v)
      mean_cell += w[u * num_racks + v];
  mean_cell /= static_cast<double>(num_cells);
  for (std::size_t e = 0; e < params.num_elephants; ++e) {
    const std::size_t u = rng.next_below(num_racks);
    std::size_t v = rng.next_below(num_racks - 1);
    if (v >= u) ++v;
    const std::size_t lo = u < v ? u : v, hi = u < v ? v : u;
    w[lo * num_racks + hi] =
        std::max(w[lo * num_racks + hi], params.elephant_boost * mean_cell);
  }

  // Normalize over unordered pairs and mirror for convenience.
  double total = 0.0;
  for (std::size_t u = 0; u < num_racks; ++u)
    for (std::size_t v = u + 1; v < num_racks; ++v)
      total += w[u * num_racks + v];
  RDCN_ASSERT(total > 0.0);
  for (std::size_t u = 0; u < num_racks; ++u)
    for (std::size_t v = u + 1; v < num_racks; ++v) {
      w[u * num_racks + v] /= total;
      w[v * num_racks + u] = w[u * num_racks + v];
    }
  return w;
}

namespace {

/// Matrix sampling state shared by the one-shot and streaming front ends:
/// the setup (matrix + alias table) consumes RNG draws in construction
/// order, each step() is one alias draw — so both front ends produce the
/// same sequence from the same starting RNG state.
class MicrosoftEmitter {
 public:
  MicrosoftEmitter(std::size_t num_racks, const MicrosoftParams& params,
                   Xoshiro256& rng)
      : rng_(rng), sampler_(flatten(num_racks, params, rng)) {}

  Request step() { return pairs_[sampler_(rng_)]; }

 private:
  /// Builds the matrix, flattens unordered pairs into pairs_, and returns
  /// the matching weight vector for the alias sampler.
  std::vector<double> flatten(std::size_t num_racks,
                              const MicrosoftParams& params,
                              Xoshiro256& rng) {
    const std::vector<double> matrix =
        make_microsoft_matrix(num_racks, params, rng);
    std::vector<double> weights;
    weights.reserve(num_racks * (num_racks - 1) / 2);
    pairs_.reserve(weights.capacity());
    for (Rack u = 0; u < num_racks; ++u)
      for (Rack v = u + 1; v < num_racks; ++v) {
        weights.push_back(matrix[static_cast<std::size_t>(u) * num_racks + v]);
        pairs_.push_back(Request{u, v});
      }
    return weights;
  }

  Xoshiro256& rng_;
  std::vector<Request> pairs_;
  AliasSampler sampler_;
};

class MicrosoftStream final : public TraceStream {
 public:
  MicrosoftStream(std::size_t num_racks, std::size_t num_requests,
                  const MicrosoftParams& params, const Xoshiro256& rng)
      : TraceStream(num_racks, "microsoft", num_requests),
        rng_(rng),
        emitter_(num_racks, params, rng_) {}

 protected:
  void produce(Request* out, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = emitter_.step();
  }

 private:
  Xoshiro256 rng_;
  MicrosoftEmitter emitter_;
};

}  // namespace

Trace generate_microsoft_like(std::size_t num_racks,
                              std::size_t num_requests,
                              const MicrosoftParams& params,
                              Xoshiro256& rng) {
  MicrosoftEmitter emitter(num_racks, params, rng);
  Trace t(num_racks, "microsoft");
  t.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) t.push_back(emitter.step());
  return t;
}

std::unique_ptr<TraceStream> stream_microsoft_like(
    std::size_t num_racks, std::size_t num_requests,
    const MicrosoftParams& params, const Xoshiro256& rng) {
  return std::make_unique<MicrosoftStream>(num_racks, num_requests, params,
                                           rng);
}

}  // namespace rdcn::trace
