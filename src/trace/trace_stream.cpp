#include "trace/trace_stream.hpp"

#include <array>

namespace rdcn::trace {

Trace materialize(TraceStream& stream) {
  Trace t(stream.num_racks(), stream.name());
  t.reserve(stream.total() - stream.produced());
  std::array<Request, 4096> chunk;
  while (true) {
    const std::size_t n = stream.next(chunk.data(), chunk.size());
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) t.push_back(chunk[i]);
  }
  return t;
}

}  // namespace rdcn::trace
