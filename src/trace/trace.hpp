// rdcn: a trace is an ordered request sequence over a fixed rack universe —
// the input σ of the online problem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/request.hpp"

namespace rdcn::trace {

class Trace {
 public:
  Trace() = default;
  Trace(std::size_t num_racks, std::string name)
      : num_racks_(num_racks), name_(std::move(name)) {}

  std::size_t num_racks() const noexcept { return num_racks_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t size() const noexcept { return requests_.size(); }
  bool empty() const noexcept { return requests_.empty(); }

  const Request& operator[](std::size_t i) const noexcept {
    RDCN_DCHECK(i < requests_.size());
    return requests_[i];
  }

  void push_back(Request r) {
    RDCN_DCHECK(r.u < num_racks_ && r.v < num_racks_ && r.u != r.v);
    requests_.push_back(r);
  }

  void reserve(std::size_t n) { requests_.reserve(n); }

  auto begin() const noexcept { return requests_.begin(); }
  auto end() const noexcept { return requests_.end(); }

  const std::vector<Request>& requests() const noexcept { return requests_; }

  /// Truncated copy of the first `n` requests (for prefix experiments).
  Trace prefix(std::size_t n) const;

  /// Number of distinct rack pairs appearing in the trace.
  std::size_t num_distinct_pairs() const;

 private:
  std::size_t num_racks_ = 0;
  std::string name_;
  std::vector<Request> requests_;
};

}  // namespace rdcn::trace
