// rdcn: a trace is an ordered request sequence over a fixed rack universe —
// the input σ of the online problem.
//
// Storage is struct-of-arrays: the two endpoint columns live in separate
// contiguous `u[]` / `v[]` vectors rather than one vector<Request>.  The
// replay pipeline consumes traces in fixed-size chunks (sim::kServeChunk),
// and gather() materializes one chunk into a caller-provided AoS scratch
// buffer — the hand-off format of core::OnlineBMatcher::serve_batch — so
// the simulator's working set per chunk is two short column slices plus a
// scratch array that stays resident in L2.  The element API is unchanged
// except that operator[] and iterators yield Request by value (an 8-byte
// register pair) instead of by reference.
#pragma once

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "trace/request.hpp"

namespace rdcn::trace {

class Trace {
 public:
  /// Random-access iterator yielding Request by value (the columns have no
  /// Request object to point into).  `const Request&` loop variables bind
  /// to the returned temporary as before.
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Request;
    using difference_type = std::ptrdiff_t;
    using reference = Request;
    using pointer = void;

    const_iterator() = default;
    const_iterator(const Rack* u, const Rack* v) : u_(u), v_(v) {}

    Request operator*() const noexcept { return Request{*u_, *v_}; }
    Request operator[](difference_type n) const noexcept {
      return Request{u_[n], v_[n]};
    }

    const_iterator& operator++() noexcept { ++u_; ++v_; return *this; }
    const_iterator operator++(int) noexcept { auto t = *this; ++*this; return t; }
    const_iterator& operator--() noexcept { --u_; --v_; return *this; }
    const_iterator operator--(int) noexcept { auto t = *this; --*this; return t; }
    const_iterator& operator+=(difference_type n) noexcept {
      u_ += n; v_ += n; return *this;
    }
    const_iterator& operator-=(difference_type n) noexcept {
      u_ -= n; v_ -= n; return *this;
    }
    friend const_iterator operator+(const_iterator it, difference_type n) noexcept {
      return it += n;
    }
    friend const_iterator operator+(difference_type n, const_iterator it) noexcept {
      return it += n;
    }
    friend const_iterator operator-(const_iterator it, difference_type n) noexcept {
      return it -= n;
    }
    friend difference_type operator-(const_iterator a, const_iterator b) noexcept {
      return a.u_ - b.u_;
    }
    friend bool operator==(const_iterator a, const_iterator b) noexcept {
      return a.u_ == b.u_;
    }
    friend auto operator<=>(const_iterator a, const_iterator b) noexcept {
      return a.u_ <=> b.u_;
    }

   private:
    const Rack* u_ = nullptr;
    const Rack* v_ = nullptr;
  };

  Trace() = default;
  Trace(std::size_t num_racks, std::string name)
      : num_racks_(num_racks), name_(std::move(name)) {}

  std::size_t num_racks() const noexcept { return num_racks_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t size() const noexcept { return u_.size(); }
  bool empty() const noexcept { return u_.empty(); }

  Request operator[](std::size_t i) const noexcept {
    RDCN_DCHECK(i < u_.size());
    return Request{u_[i], v_[i]};
  }

  void push_back(Request r) {
    RDCN_DCHECK(r.u < num_racks_ && r.v < num_racks_ && r.u != r.v);
    u_.push_back(r.u);
    v_.push_back(r.v);
  }

  void reserve(std::size_t n) {
    u_.reserve(n);
    v_.reserve(n);
  }

  auto begin() const noexcept { return const_iterator(u_.data(), v_.data()); }
  auto end() const noexcept {
    return const_iterator(u_.data() + u_.size(), v_.data() + v_.size());
  }

  /// Raw SoA columns (for analytics and column-wise consumers).
  const Rack* u_data() const noexcept { return u_.data(); }
  const Rack* v_data() const noexcept { return v_.data(); }

  /// Materializes requests [offset, offset + count) into `out` in AoS form
  /// — the chunk hand-off of the batched serve pipeline.
  void gather(std::size_t offset, std::size_t count, Request* out) const {
    RDCN_DCHECK(offset + count <= u_.size());
    const Rack* u = u_.data() + offset;
    const Rack* v = v_.data() + offset;
    for (std::size_t i = 0; i < count; ++i) out[i] = Request{u[i], v[i]};
  }

  /// Truncated copy of the first `n` requests (for prefix experiments).
  Trace prefix(std::size_t n) const;

  /// Number of distinct rack pairs appearing in the trace.
  std::size_t num_distinct_pairs() const;

 private:
  std::size_t num_racks_ = 0;
  std::string name_;
  std::vector<Rack> u_;
  std::vector<Rack> v_;
};

}  // namespace rdcn::trace
