#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/flat_hash.hpp"

namespace rdcn::trace {

std::vector<std::pair<std::uint64_t, std::uint64_t>> pair_counts_sorted(
    const Trace& trace) {
  FlatMap<std::uint64_t> counts(trace.size());
  for (const Request& r : trace) ++counts[pair_key(r)];
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(counts.size());
  counts.for_each([&](std::uint64_t key, std::uint64_t cnt) {
    out.emplace_back(key, cnt);
  });
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.num_requests = trace.size();
  s.num_racks = trace.num_racks();
  if (trace.empty()) return s;

  const auto counts = pair_counts_sorted(trace);
  s.distinct_pairs = counts.size();
  const double total = static_cast<double>(trace.size());

  // Entropy and top-k shares from the sorted histogram.
  double entropy = 0.0;
  for (const auto& [key, cnt] : counts) {
    const double p = static_cast<double>(cnt) / total;
    entropy -= p * std::log2(p);
  }
  s.normalized_pair_entropy =
      counts.size() > 1
          ? entropy / std::log2(static_cast<double>(counts.size()))
          : 0.0;

  auto share_of_top = [&](double fraction) {
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(fraction * static_cast<double>(counts.size()))));
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < k && i < counts.size(); ++i)
      sum += counts[i].second;
    return static_cast<double>(sum) / total;
  };
  s.top1pct_share = share_of_top(0.01);
  s.top10pct_share = share_of_top(0.10);

  // Gini over the count distribution (counts sorted descending -> sort
  // ascending for the standard formula).
  {
    std::vector<double> c;
    c.reserve(counts.size());
    for (auto it = counts.rbegin(); it != counts.rend(); ++it)
      c.push_back(static_cast<double>(it->second));
    double cum = 0.0, weighted = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      cum += c[i];
      weighted += static_cast<double>(i + 1) * c[i];
    }
    const double n = static_cast<double>(c.size());
    s.gini = c.size() > 1 && cum > 0.0
                 ? (2.0 * weighted) / (n * cum) - (n + 1.0) / n
                 : 0.0;
  }

  // Temporal metrics in one forward pass.
  std::size_t repeats = 0;
  std::size_t window_hits = 0;
  constexpr std::size_t kWindow = 64;
  std::deque<std::uint64_t> window;
  FlatMap<std::uint32_t> in_window;  // key -> multiplicity in window
  std::uint64_t prev_key = ~std::uint64_t{0};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint64_t key = pair_key(trace[i]);
    if (i > 0 && key == prev_key) ++repeats;
    if (i > 0 && in_window.contains(key)) ++window_hits;
    prev_key = key;

    window.push_back(key);
    ++in_window[key];
    if (window.size() > kWindow) {
      const std::uint64_t old = window.front();
      window.pop_front();
      std::uint32_t* m = in_window.find(old);
      if (m != nullptr && --(*m) == 0) in_window.erase(old);
    }
  }
  if (trace.size() > 1) {
    s.repeat_probability =
        static_cast<double>(repeats) / static_cast<double>(trace.size() - 1);
    s.locality_window64 = static_cast<double>(window_hits) /
                          static_cast<double>(trace.size() - 1);
  }
  return s;
}

}  // namespace rdcn::trace
