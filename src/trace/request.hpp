// rdcn: a communication request — an unordered rack pair {s, t}, the unit
// of demand in the paper's model (§1.1: "a request could either be an
// individual packet or a certain amount of bytes transferred").
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace rdcn::trace {

using Rack = std::uint32_t;

struct Request {
  Rack u;
  Rack v;

  /// Normalized constructor: stores min(u,v), max(u,v).
  static Request make(Rack a, Rack b) {
    RDCN_DCHECK(a != b);
    return a < b ? Request{a, b} : Request{b, a};
  }

  friend bool operator==(const Request&, const Request&) = default;
};

/// Canonical 64-bit id of an unordered pair: (min << 32) | max.
/// Never equals FlatMap::kEmptyKey because rack ids are < 2^32 - 1.
inline std::uint64_t pair_key(Rack a, Rack b) noexcept {
  RDCN_DCHECK(a != b);
  const Rack lo = a < b ? a : b;
  const Rack hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

inline std::uint64_t pair_key(const Request& r) noexcept {
  return pair_key(r.u, r.v);
}

inline Rack pair_lo(std::uint64_t key) noexcept {
  return static_cast<Rack>(key >> 32);
}
inline Rack pair_hi(std::uint64_t key) noexcept {
  return static_cast<Rack>(key & 0xFFFFFFFFu);
}

}  // namespace rdcn::trace
