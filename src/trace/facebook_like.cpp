#include "trace/facebook_like.hpp"

namespace rdcn::trace {

const char* facebook_cluster_name(FacebookCluster cluster) {
  switch (cluster) {
    case FacebookCluster::kDatabase: return "database";
    case FacebookCluster::kWebService: return "web";
    case FacebookCluster::kHadoop: return "hadoop";
  }
  return "unknown";
}

FlowPoolParams facebook_params(FacebookCluster cluster,
                               std::size_t num_racks) {
  FlowPoolParams p;
  switch (cluster) {
    case FacebookCluster::kDatabase:
      // SQL serving: a stable, strongly skewed set of hot partition pairs
      // concentrated on a fifth of the racks (hub structure — database
      // shards are colocated), long request trains per pair (strong
      // temporal locality).
      p.candidate_pairs = 20 * num_racks;
      p.zipf_skew = 1.0;
      p.mean_burst_length = 60.0;
      p.max_active_flows = 96;
      p.new_flow_prob = 0.12;
      p.drift_period = 0;  // hot set is stable over the trace
      p.hub_fraction = 0.2;
      p.hub_bias = 0.85;
      p.noise_fraction = 0.30;
      break;
    case FacebookCluster::kWebService:
      // Stateless frontends fan out widely: weak skew, short bursts, many
      // concurrently active pairs, demand spread over most of the fabric.
      p.candidate_pairs = 25 * num_racks;
      p.zipf_skew = 0.6;
      p.mean_burst_length = 6.0;
      p.max_active_flows = 256;
      p.new_flow_prob = 0.5;
      p.drift_period = 0;
      p.hub_fraction = 0.5;
      p.hub_bias = 0.5;
      p.noise_fraction = 0.45;
      break;
    case FacebookCluster::kHadoop:
      // Batch shuffle: bursts from a moderate elephant set concentrated on
      // the job's racks; the active mix changes over the trace
      // (working-set drift between job waves).
      p.candidate_pairs = 12 * num_racks;
      p.zipf_skew = 0.95;
      p.mean_burst_length = 35.0;
      p.max_active_flows = 96;
      p.new_flow_prob = 0.15;
      p.drift_period = 25000;
      p.drift_fraction = 0.2;
      p.hub_fraction = 0.3;
      p.hub_bias = 0.7;
      p.noise_fraction = 0.35;
      break;
  }
  return p;
}

Trace generate_facebook_like(FacebookCluster cluster, std::size_t num_racks,
                             std::size_t num_requests, Xoshiro256& rng) {
  const FlowPoolParams params = facebook_params(cluster, num_racks);
  Trace t = generate_flow_pool(num_racks, num_requests, params, rng);
  t.set_name(std::string("facebook_") + facebook_cluster_name(cluster));
  return t;
}

std::unique_ptr<TraceStream> stream_facebook_like(FacebookCluster cluster,
                                                  std::size_t num_racks,
                                                  std::size_t num_requests,
                                                  const Xoshiro256& rng) {
  const FlowPoolParams params = facebook_params(cluster, num_racks);
  auto stream = stream_flow_pool(num_racks, num_requests, params, rng);
  stream->set_name(std::string("facebook_") + facebook_cluster_name(cluster));
  return stream;
}

}  // namespace rdcn::trace
