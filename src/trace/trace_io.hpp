// rdcn: trace (de)serialization.
//
// CSV format, one request per line: "src,dst".  A leading comment header
// ("# racks=<n> name=<name>") carries metadata.  The format is the least
// common denominator for importing real traces (the open-sourced artifacts
// of the paper use equivalent pair lists).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace rdcn::trace {

void write_csv(const Trace& trace, std::ostream& out);
void write_csv_file(const Trace& trace, const std::string& path);

/// Parses the CSV form with *checked* numeric conversion: trailing
/// garbage ("12abc"), negatives, values exceeding the rack id range,
/// missing commas, and self-loops all raise SpecError naming the offending
/// `source` file and line ("trace.csv:12: ...") instead of silently
/// truncating or aborting.  If the header is missing, num_racks is
/// inferred as max rack id + 1.
Trace read_csv(std::istream& in, const std::string& source = "<trace>");

/// read_csv over a file; unopenable paths raise SpecError.
Trace read_csv_file(const std::string& path);

}  // namespace rdcn::trace
