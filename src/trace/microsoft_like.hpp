// rdcn: Microsoft-like (ProjecToR) workload.
//
// The paper's Microsoft dataset (§3.1, from Ghobadi et al., SIGCOMM'16) is
// "simply a probability distribution describing rack-to-rack communication"
// — a traffic matrix — from which the authors sample i.i.d.  The trace thus
// has *no temporal structure by design* but *significant spatial structure*
// (skewed).  The published matrix itself is not redistributable, so we
// synthesize a matrix with the same qualitative shape:
//
//   * per-rack activity follows a power law (a few racks source/sink most
//     traffic — ProjecToR reports most bytes concentrated on few ToR pairs),
//   * a sprinkle of super-hot "elephant entries" (cross-rack services),
//   * i.i.d. sampling via an O(1) alias sampler.
//
// The paper uses 50 racks and 1.75e6 requests.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stream.hpp"

namespace rdcn::trace {

struct MicrosoftParams {
  double rack_skew = 1.2;        ///< power-law exponent of rack activity
  std::size_t num_elephants = 25;///< extra super-hot matrix entries
  double elephant_boost = 30.0;  ///< weight multiplier for elephants
};

/// Builds the synthetic rack-to-rack probability matrix (row-major,
/// symmetric, zero diagonal, sums to 1 over unordered pairs counted once).
std::vector<double> make_microsoft_matrix(std::size_t num_racks,
                                          const MicrosoftParams& params,
                                          Xoshiro256& rng);

/// Samples `num_requests` i.i.d. requests from the matrix.
Trace generate_microsoft_like(std::size_t num_racks,
                              std::size_t num_requests,
                              const MicrosoftParams& params, Xoshiro256& rng);

/// Streaming twin of generate_microsoft_like (chunked production, RNG
/// snapshotted; see trace/trace_stream.hpp).
std::unique_ptr<TraceStream> stream_microsoft_like(
    std::size_t num_racks, std::size_t num_requests,
    const MicrosoftParams& params, const Xoshiro256& rng);

}  // namespace rdcn::trace
