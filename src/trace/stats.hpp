// rdcn: trace structure analytics.
//
// The paper's workload discussion (§3.1, following Avin et al.
// SIGMETRICS'20 "On the complexity of traffic traces and implications")
// characterizes traces along two axes: *spatial* structure (how skewed the
// pair distribution is) and *temporal* structure (how bursty/repetitive the
// sequence is).  These metrics let tests assert that the synthetic
// Facebook-like traces are skewed AND bursty while the Microsoft-like trace
// is skewed but NOT bursty — the property driving Fig 4c's SO-BMA result.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace rdcn::trace {

struct TraceStats {
  std::size_t num_requests = 0;
  std::size_t num_racks = 0;
  std::size_t distinct_pairs = 0;

  /// Shannon entropy of the empirical pair distribution, normalized by
  /// log2(#distinct pairs): 1.0 = uniform over observed pairs, 0 = single
  /// pair.  Lower = more spatial structure (skew).
  double normalized_pair_entropy = 0.0;

  /// Fraction of traffic carried by the top 1% / 10% of pairs.
  double top1pct_share = 0.0;
  double top10pct_share = 0.0;

  /// P(request i+1 has the same pair as request i): direct burstiness.
  double repeat_probability = 0.0;

  /// P(the pair of request i appeared within the previous `window`
  /// requests), window = 64: working-set temporal locality.
  double locality_window64 = 0.0;

  /// Gini coefficient of the pair-frequency distribution (0 = uniform,
  /// -> 1 = maximally concentrated): the spatial-skew scalar.
  double gini = 0.0;
};

TraceStats compute_stats(const Trace& trace);

/// Per-pair request counts, descending (the "demand matrix" aggregated
/// over the trace; input to SO-BMA-style static optimization).
std::vector<std::pair<std::uint64_t, std::uint64_t>> pair_counts_sorted(
    const Trace& trace);

}  // namespace rdcn::trace
