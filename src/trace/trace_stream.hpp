// rdcn: streaming trace production — requests in fixed-size chunks.
//
// A TraceStream is the pull side of the batched serve pipeline: instead of
// materializing a full Trace (8 bytes × requests) before the first request
// is served, a stream produces the next chunk on demand, so a replay's
// peak memory is one scratch chunk regardless of trace length.  Every
// generator in trace/generators.hpp (plus the Facebook/Microsoft cluster
// profiles) has a stream_* twin built on the same per-request emitter, so
// a stream with seed s produces bit-identically the trace generate_*(s)
// returns — pinned by the stream-equivalence test suite.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "trace/request.hpp"
#include "trace/trace.hpp"

namespace rdcn::trace {

class TraceStream {
 public:
  TraceStream(std::size_t num_racks, std::string name, std::size_t total)
      : num_racks_(num_racks), name_(std::move(name)), total_(total) {}
  virtual ~TraceStream() = default;

  TraceStream(const TraceStream&) = delete;
  TraceStream& operator=(const TraceStream&) = delete;

  std::size_t num_racks() const noexcept { return num_racks_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Total number of requests this stream will produce over its lifetime
  /// (σ is finite; the simulator uses this to clamp checkpoint grids the
  /// same way it clamps against Trace::size()).
  std::size_t total() const noexcept { return total_; }

  /// Requests handed out so far.
  std::size_t produced() const noexcept { return produced_; }

  /// Fills out[0, n) with the next requests, n = min(max, remaining);
  /// returns n (0 once exhausted).
  std::size_t next(Request* out, std::size_t max) {
    const std::size_t remaining = total_ - produced_;
    const std::size_t n = max < remaining ? max : remaining;
    if (n != 0) {
      produce(out, n);
      produced_ += n;
    }
    return n;
  }

 protected:
  /// Produces exactly `n` requests into out (n >= 1, already clamped).
  virtual void produce(Request* out, std::size_t n) = 0;

 private:
  std::size_t num_racks_;
  std::string name_;
  std::size_t total_;
  std::size_t produced_ = 0;
};

/// Stream view over an existing Trace (chunked copies of its columns).
class MaterializedStream final : public TraceStream {
 public:
  /// `trace` must outlive the stream.
  explicit MaterializedStream(const Trace& trace)
      : TraceStream(trace.num_racks(), trace.name(), trace.size()),
        trace_(&trace) {}

 protected:
  void produce(Request* out, std::size_t n) override {
    trace_->gather(produced(), n, out);
  }

 private:
  const Trace* trace_;
};

/// Drains `stream` to exhaustion into a Trace (name and rack universe
/// carried over).  The inverse of MaterializedStream.
Trace materialize(TraceStream& stream);

}  // namespace rdcn::trace
