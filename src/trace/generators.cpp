#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/flat_hash.hpp"

namespace rdcn::trace {

namespace {

Request random_pair(std::size_t num_racks, Xoshiro256& rng) {
  const Rack u = static_cast<Rack>(rng.next_below(num_racks));
  Rack v = static_cast<Rack>(rng.next_below(num_racks - 1));
  if (v >= u) ++v;
  return Request::make(u, v);
}

/// Samples `count` distinct rack pairs uniformly at random.
std::vector<Request> sample_distinct_pairs(std::size_t num_racks,
                                           std::size_t count,
                                           Xoshiro256& rng) {
  const std::size_t all = num_racks * (num_racks - 1) / 2;
  RDCN_ASSERT_MSG(count <= all, "more candidate pairs than exist");
  std::vector<Request> pairs;
  pairs.reserve(count);
  FlatSet seen(count);
  while (pairs.size() < count) {
    const Request r = random_pair(num_racks, rng);
    if (seen.insert(pair_key(r))) pairs.push_back(r);
  }
  return pairs;
}

// Per-request emitters.  Each constructor performs the generator's setup
// draws and each step() performs exactly the per-request draws of the
// historical single-shot loop, in the same order — generate_* and stream_*
// share these, which is what makes them bit-identical.

class UniformEmitter {
 public:
  UniformEmitter(std::size_t num_racks, Xoshiro256& rng)
      : num_racks_(num_racks), rng_(rng) {
    RDCN_ASSERT(num_racks >= 2);
  }

  Request step() { return random_pair(num_racks_, rng_); }

 private:
  std::size_t num_racks_;
  Xoshiro256& rng_;
};

class ZipfPairsEmitter {
 public:
  ZipfPairsEmitter(std::size_t num_racks, double skew, Xoshiro256& rng)
      : rng_(rng), zipf_(num_racks * (num_racks - 1) / 2, skew) {
    RDCN_ASSERT(num_racks >= 2);
    // Rank all pairs by a random permutation, then draw ranks from Zipf(s).
    pairs_.reserve(num_racks * (num_racks - 1) / 2);
    for (Rack u = 0; u < num_racks; ++u)
      for (Rack v = u + 1; v < num_racks; ++v)
        pairs_.push_back(Request{u, v});
    shuffle(pairs_.begin(), pairs_.end(), rng_);
  }

  Request step() { return pairs_[zipf_(rng_)]; }

 private:
  Xoshiro256& rng_;
  std::vector<Request> pairs_;
  ZipfSampler zipf_;
};

class HotspotEmitter {
 public:
  HotspotEmitter(std::size_t num_racks, double hot_fraction, double hot_share,
                 Xoshiro256& rng)
      : num_racks_(num_racks), hot_share_(hot_share), rng_(rng) {
    RDCN_ASSERT(num_racks >= 4);
    RDCN_ASSERT(hot_fraction > 0.0 && hot_fraction < 1.0);
    RDCN_ASSERT(hot_share >= 0.0 && hot_share <= 1.0);
    num_hot_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(hot_fraction * num_racks)));
    racks_.resize(num_racks);
    for (std::size_t i = 0; i < num_racks; ++i)
      racks_[i] = static_cast<Rack>(i);
    shuffle(racks_.begin(), racks_.end(), rng_);
    // racks_[0..num_hot_) are the hotspots.
  }

  Request step() {
    if (rng_.next_bool(hot_share_) && num_hot_ >= 1) {
      // One endpoint hot, the other uniform.
      const Rack h = racks_[rng_.next_below(num_hot_)];
      Rack o = static_cast<Rack>(rng_.next_below(num_racks_ - 1));
      if (o >= h) ++o;
      return Request::make(h, o);
    }
    return random_pair(num_racks_, rng_);
  }

 private:
  std::size_t num_racks_;
  double hot_share_;
  Xoshiro256& rng_;
  std::size_t num_hot_ = 0;
  std::vector<Rack> racks_;
};

class PermutationEmitter {
 public:
  PermutationEmitter(std::size_t num_racks, Xoshiro256& rng) : rng_(rng) {
    RDCN_ASSERT(num_racks >= 2 && num_racks % 2 == 0);
    std::vector<Rack> perm(num_racks);
    for (std::size_t i = 0; i < num_racks; ++i) perm[i] = static_cast<Rack>(i);
    shuffle(perm.begin(), perm.end(), rng_);
    // Pair consecutive entries of the shuffled list.
    pairs_.reserve(num_racks / 2);
    for (std::size_t i = 0; i + 1 < num_racks; i += 2)
      pairs_.push_back(Request::make(perm[i], perm[i + 1]));
  }

  Request step() { return pairs_[rng_.next_below(pairs_.size())]; }

 private:
  Xoshiro256& rng_;
  std::vector<Request> pairs_;
};

class FlowPoolEmitter {
 public:
  FlowPoolEmitter(std::size_t num_racks, const FlowPoolParams& params,
                  Xoshiro256& rng)
      : num_racks_(num_racks),
        params_(params),
        rng_(rng),
        zipf_(std::min(params.candidate_pairs,
                       num_racks * (num_racks - 1) / 2),
              params.zipf_skew),
        // P(burst continues) chosen so the mean geometric length matches.
        p_end_(1.0 / params.mean_burst_length) {
    RDCN_ASSERT(num_racks >= 2);
    RDCN_ASSERT(params_.candidate_pairs >= 1);
    RDCN_ASSERT(params_.mean_burst_length >= 1.0);
    RDCN_ASSERT(params_.max_active_flows >= 1);

    const std::size_t all_pairs = num_racks * (num_racks - 1) / 2;
    const std::size_t num_candidates =
        std::min(params_.candidate_pairs, all_pairs);

    // Optional hub structure: designate hot racks and bias candidate
    // endpoints toward them.
    if (params_.hub_fraction > 0.0) {
      const std::size_t num_hubs = std::max<std::size_t>(
          2, static_cast<std::size_t>(params_.hub_fraction *
                                      static_cast<double>(num_racks)));
      std::vector<Rack> racks(num_racks);
      for (std::size_t i = 0; i < num_racks; ++i)
        racks[i] = static_cast<Rack>(i);
      shuffle(racks.begin(), racks.end(), rng_);
      hubs_.assign(racks.begin(),
                   racks.begin() + static_cast<std::ptrdiff_t>(num_hubs));
    }

    if (hubs_.empty()) {
      candidates_ = sample_distinct_pairs(num_racks, num_candidates, rng_);
    } else {
      candidates_.reserve(num_candidates);
      FlatSet seen(num_candidates);
      std::size_t attempts = 0;
      while (candidates_.size() < num_candidates) {
        const Request r = sample_candidate();
        // Hub-biased sampling can exhaust the hub-pair universe; give up on
        // distinctness after enough rejections and allow duplicates (they
        // merely deepen the skew).
        if (seen.insert(pair_key(r)) || ++attempts > 50 * num_candidates) {
          candidates_.push_back(r);
        }
      }
    }
    active_.reserve(params_.max_active_flows);
  }

  Request step() {
    // Working-set drift: refresh part of the candidate set periodically.
    if (params_.drift_period > 0 && emitted_ > 0 &&
        emitted_ % params_.drift_period == 0) {
      const std::size_t refresh = static_cast<std::size_t>(
          params_.drift_fraction * static_cast<double>(candidates_.size()));
      for (std::size_t r = 0; r < refresh; ++r) {
        const std::size_t slot = rng_.next_below(candidates_.size());
        candidates_[slot] = hubs_.empty() ? random_pair(num_racks_, rng_)
                                          : sample_candidate();
      }
    }

    if (params_.noise_fraction > 0.0 &&
        rng_.next_bool(params_.noise_fraction)) {
      ++emitted_;
      return random_pair(num_racks_, rng_);
    }
    if (active_.empty() ||
        (active_.size() < params_.max_active_flows &&
         rng_.next_bool(params_.new_flow_prob))) {
      spawn_flow();
    }
    const std::size_t i = rng_.next_below(active_.size());
    const Request out = active_[i].pair;
    ++emitted_;
    if (--active_[i].remaining == 0) {
      active_[i] = active_.back();
      active_.pop_back();
    }
    return out;
  }

 private:
  struct Flow {
    Request pair;
    std::size_t remaining;
  };

  Rack sample_endpoint() {
    if (!hubs_.empty() && rng_.next_bool(params_.hub_bias))
      return hubs_[rng_.next_below(hubs_.size())];
    return static_cast<Rack>(rng_.next_below(num_racks_));
  }

  Request sample_candidate() {
    while (true) {
      const Rack u = sample_endpoint();
      const Rack v = sample_endpoint();
      if (u != v) return Request::make(u, v);
    }
  }

  void spawn_flow() {
    const Request pair = candidates_[zipf_(rng_)];
    const std::size_t len = 1 + sample_geometric(rng_, p_end_);
    active_.push_back({pair, len});
  }

  std::size_t num_racks_;
  FlowPoolParams params_;
  Xoshiro256& rng_;
  std::vector<Rack> hubs_;
  std::vector<Request> candidates_;
  ZipfSampler zipf_;
  double p_end_;
  std::vector<Flow> active_;
  std::size_t emitted_ = 0;
};

class ElephantMiceEmitter {
 public:
  ElephantMiceEmitter(std::size_t num_racks, std::size_t num_elephants,
                      double elephant_share, double mean_run_length,
                      Xoshiro256& rng)
      : num_racks_(num_racks),
        elephant_share_(elephant_share),
        p_end_(1.0 / mean_run_length),
        rng_(rng) {
    RDCN_ASSERT(num_racks >= 2);
    RDCN_ASSERT(num_elephants >= 1);
    RDCN_ASSERT(elephant_share >= 0.0 && elephant_share <= 1.0);
    RDCN_ASSERT(mean_run_length >= 1.0);
    elephants_ = sample_distinct_pairs(num_racks, num_elephants, rng_);
  }

  Request step() {
    // An in-progress elephant run continues without further draws; the
    // run length was sampled when it started (truncation at the trace end
    // simply leaves the run unfinished, exactly as the one-shot loop did).
    if (run_remaining_ > 0) {
      --run_remaining_;
      return run_pair_;
    }
    if (rng_.next_bool(elephant_share_)) {
      run_pair_ = elephants_[rng_.next_below(elephants_.size())];
      run_remaining_ = sample_geometric(rng_, p_end_);  // 1 + g, one emitted now
      return run_pair_;
    }
    return random_pair(num_racks_, rng_);
  }

 private:
  std::size_t num_racks_;
  double elephant_share_;
  double p_end_;
  Xoshiro256& rng_;
  std::vector<Request> elephants_;
  Request run_pair_{0, 1};
  std::size_t run_remaining_ = 0;
};

class RoundRobinStarEmitter {
 public:
  RoundRobinStarEmitter(std::size_t num_racks, std::size_t k,
                        [[maybe_unused]] Xoshiro256& rng)
      : k_(k) {
    RDCN_ASSERT(num_racks >= k + 2);
    RDCN_ASSERT(k >= 1);
  }

  Request step() {
    const Rack other = static_cast<Rack>(1 + (i_++ % (k_ + 1)));
    return Request::make(0, other);
  }

 private:
  std::size_t k_;
  std::size_t i_ = 0;
};

/// generate_* front end: drains `emitter` into a materialized Trace.
template <typename Emitter>
Trace drain(Emitter& emitter, std::size_t num_racks,
            std::size_t num_requests, const char* name) {
  Trace t(num_racks, name);
  t.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) t.push_back(emitter.step());
  return t;
}

/// stream_* front end: owns an RNG snapshot plus the emitter driving it.
template <typename Emitter>
class EmitterStream final : public TraceStream {
 public:
  template <typename... Args>
  EmitterStream(std::size_t num_racks, std::string name, std::size_t total,
                const Xoshiro256& rng, Args&&... args)
      : TraceStream(num_racks, std::move(name), total),
        rng_(rng),  // declared before emitter_, which holds a reference
        emitter_(num_racks, std::forward<Args>(args)..., rng_) {}

 protected:
  void produce(Request* out, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = emitter_.step();
  }

 private:
  Xoshiro256 rng_;
  Emitter emitter_;
};

template <typename Emitter, typename... Args>
std::unique_ptr<TraceStream> make_stream(std::size_t num_racks,
                                         std::string name, std::size_t total,
                                         const Xoshiro256& rng,
                                         Args&&... args) {
  return std::make_unique<EmitterStream<Emitter>>(
      num_racks, std::move(name), total, rng, std::forward<Args>(args)...);
}

}  // namespace

Trace generate_uniform(std::size_t num_racks, std::size_t num_requests,
                       Xoshiro256& rng) {
  UniformEmitter e(num_racks, rng);
  return drain(e, num_racks, num_requests, "uniform");
}

Trace generate_zipf_pairs(std::size_t num_racks, std::size_t num_requests,
                          double skew, Xoshiro256& rng) {
  ZipfPairsEmitter e(num_racks, skew, rng);
  return drain(e, num_racks, num_requests, "zipf");
}

Trace generate_hotspot(std::size_t num_racks, std::size_t num_requests,
                       double hot_fraction, double hot_share,
                       Xoshiro256& rng) {
  HotspotEmitter e(num_racks, hot_fraction, hot_share, rng);
  return drain(e, num_racks, num_requests, "hotspot");
}

Trace generate_permutation(std::size_t num_racks, std::size_t num_requests,
                           Xoshiro256& rng) {
  PermutationEmitter e(num_racks, rng);
  return drain(e, num_racks, num_requests, "permutation");
}

Trace generate_flow_pool(std::size_t num_racks, std::size_t num_requests,
                         const FlowPoolParams& params, Xoshiro256& rng) {
  FlowPoolEmitter e(num_racks, params, rng);
  return drain(e, num_racks, num_requests, "flow_pool");
}

Trace generate_elephant_mice(std::size_t num_racks, std::size_t num_requests,
                             std::size_t num_elephants, double elephant_share,
                             double mean_run_length, Xoshiro256& rng) {
  ElephantMiceEmitter e(num_racks, num_elephants, elephant_share,
                        mean_run_length, rng);
  return drain(e, num_racks, num_requests, "elephant_mice");
}

Trace generate_round_robin_star(std::size_t num_racks,
                                std::size_t num_requests, std::size_t k) {
  Xoshiro256 unused(0);
  RoundRobinStarEmitter e(num_racks, k, unused);
  return drain(e, num_racks, num_requests, "round_robin_star");
}

std::unique_ptr<TraceStream> stream_uniform(std::size_t num_racks,
                                            std::size_t num_requests,
                                            const Xoshiro256& rng) {
  return make_stream<UniformEmitter>(num_racks, "uniform", num_requests, rng);
}

std::unique_ptr<TraceStream> stream_zipf_pairs(std::size_t num_racks,
                                               std::size_t num_requests,
                                               double skew,
                                               const Xoshiro256& rng) {
  return make_stream<ZipfPairsEmitter>(num_racks, "zipf", num_requests, rng,
                                       skew);
}

std::unique_ptr<TraceStream> stream_hotspot(std::size_t num_racks,
                                            std::size_t num_requests,
                                            double hot_fraction,
                                            double hot_share,
                                            const Xoshiro256& rng) {
  return make_stream<HotspotEmitter>(num_racks, "hotspot", num_requests, rng,
                                     hot_fraction, hot_share);
}

std::unique_ptr<TraceStream> stream_permutation(std::size_t num_racks,
                                                std::size_t num_requests,
                                                const Xoshiro256& rng) {
  return make_stream<PermutationEmitter>(num_racks, "permutation",
                                         num_requests, rng);
}

std::unique_ptr<TraceStream> stream_flow_pool(std::size_t num_racks,
                                              std::size_t num_requests,
                                              const FlowPoolParams& params,
                                              const Xoshiro256& rng) {
  return make_stream<FlowPoolEmitter>(num_racks, "flow_pool", num_requests,
                                      rng, params);
}

std::unique_ptr<TraceStream> stream_elephant_mice(
    std::size_t num_racks, std::size_t num_requests,
    std::size_t num_elephants, double elephant_share, double mean_run_length,
    const Xoshiro256& rng) {
  return make_stream<ElephantMiceEmitter>(num_racks, "elephant_mice",
                                          num_requests, rng, num_elephants,
                                          elephant_share, mean_run_length);
}

std::unique_ptr<TraceStream> stream_round_robin_star(std::size_t num_racks,
                                                     std::size_t num_requests,
                                                     std::size_t k) {
  return make_stream<RoundRobinStarEmitter>(num_racks, "round_robin_star",
                                            num_requests, Xoshiro256(0), k);
}

}  // namespace rdcn::trace
