#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/flat_hash.hpp"

namespace rdcn::trace {

namespace {

Request random_pair(std::size_t num_racks, Xoshiro256& rng) {
  const Rack u = static_cast<Rack>(rng.next_below(num_racks));
  Rack v = static_cast<Rack>(rng.next_below(num_racks - 1));
  if (v >= u) ++v;
  return Request::make(u, v);
}

/// Samples `count` distinct rack pairs uniformly at random.
std::vector<Request> sample_distinct_pairs(std::size_t num_racks,
                                           std::size_t count,
                                           Xoshiro256& rng) {
  const std::size_t all = num_racks * (num_racks - 1) / 2;
  RDCN_ASSERT_MSG(count <= all, "more candidate pairs than exist");
  std::vector<Request> pairs;
  pairs.reserve(count);
  FlatSet seen(count);
  while (pairs.size() < count) {
    const Request r = random_pair(num_racks, rng);
    if (seen.insert(pair_key(r))) pairs.push_back(r);
  }
  return pairs;
}

}  // namespace

Trace generate_uniform(std::size_t num_racks, std::size_t num_requests,
                       Xoshiro256& rng) {
  RDCN_ASSERT(num_racks >= 2);
  Trace t(num_racks, "uniform");
  t.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i)
    t.push_back(random_pair(num_racks, rng));
  return t;
}

Trace generate_zipf_pairs(std::size_t num_racks, std::size_t num_requests,
                          double skew, Xoshiro256& rng) {
  RDCN_ASSERT(num_racks >= 2);
  // Rank all pairs by a random permutation, then draw ranks from Zipf(s).
  std::vector<Request> pairs;
  pairs.reserve(num_racks * (num_racks - 1) / 2);
  for (Rack u = 0; u < num_racks; ++u)
    for (Rack v = u + 1; v < num_racks; ++v)
      pairs.push_back(Request{u, v});
  shuffle(pairs.begin(), pairs.end(), rng);
  const ZipfSampler zipf(pairs.size(), skew);

  Trace t(num_racks, "zipf");
  t.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i)
    t.push_back(pairs[zipf(rng)]);
  return t;
}

Trace generate_hotspot(std::size_t num_racks, std::size_t num_requests,
                       double hot_fraction, double hot_share,
                       Xoshiro256& rng) {
  RDCN_ASSERT(num_racks >= 4);
  RDCN_ASSERT(hot_fraction > 0.0 && hot_fraction < 1.0);
  RDCN_ASSERT(hot_share >= 0.0 && hot_share <= 1.0);
  const std::size_t num_hot =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(hot_fraction * num_racks)));
  std::vector<Rack> racks(num_racks);
  for (std::size_t i = 0; i < num_racks; ++i) racks[i] = static_cast<Rack>(i);
  shuffle(racks.begin(), racks.end(), rng);
  // racks[0..num_hot) are the hotspots.

  Trace t(num_racks, "hotspot");
  t.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    if (rng.next_bool(hot_share) && num_hot >= 1) {
      // One endpoint hot, the other uniform.
      const Rack h = racks[rng.next_below(num_hot)];
      Rack o = static_cast<Rack>(rng.next_below(num_racks - 1));
      if (o >= h) ++o;
      t.push_back(Request::make(h, o));
    } else {
      t.push_back(random_pair(num_racks, rng));
    }
  }
  return t;
}

Trace generate_permutation(std::size_t num_racks, std::size_t num_requests,
                           Xoshiro256& rng) {
  RDCN_ASSERT(num_racks >= 2 && num_racks % 2 == 0);
  std::vector<Rack> perm(num_racks);
  for (std::size_t i = 0; i < num_racks; ++i) perm[i] = static_cast<Rack>(i);
  shuffle(perm.begin(), perm.end(), rng);
  // Pair consecutive entries of the shuffled list.
  std::vector<Request> pairs;
  pairs.reserve(num_racks / 2);
  for (std::size_t i = 0; i + 1 < num_racks; i += 2)
    pairs.push_back(Request::make(perm[i], perm[i + 1]));

  Trace t(num_racks, "permutation");
  t.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i)
    t.push_back(pairs[rng.next_below(pairs.size())]);
  return t;
}

Trace generate_flow_pool(std::size_t num_racks, std::size_t num_requests,
                         const FlowPoolParams& params, Xoshiro256& rng) {
  RDCN_ASSERT(num_racks >= 2);
  RDCN_ASSERT(params.candidate_pairs >= 1);
  RDCN_ASSERT(params.mean_burst_length >= 1.0);
  RDCN_ASSERT(params.max_active_flows >= 1);

  const std::size_t all_pairs = num_racks * (num_racks - 1) / 2;
  const std::size_t num_candidates =
      std::min(params.candidate_pairs, all_pairs);

  // Optional hub structure: designate hot racks and bias candidate
  // endpoints toward them.
  std::vector<Rack> hubs;
  if (params.hub_fraction > 0.0) {
    const std::size_t num_hubs = std::max<std::size_t>(
        2, static_cast<std::size_t>(params.hub_fraction *
                                    static_cast<double>(num_racks)));
    std::vector<Rack> racks(num_racks);
    for (std::size_t i = 0; i < num_racks; ++i)
      racks[i] = static_cast<Rack>(i);
    shuffle(racks.begin(), racks.end(), rng);
    hubs.assign(racks.begin(),
                racks.begin() + static_cast<std::ptrdiff_t>(num_hubs));
  }
  auto sample_endpoint = [&]() -> Rack {
    if (!hubs.empty() && rng.next_bool(params.hub_bias))
      return hubs[rng.next_below(hubs.size())];
    return static_cast<Rack>(rng.next_below(num_racks));
  };
  auto sample_candidate = [&]() -> Request {
    while (true) {
      const Rack u = sample_endpoint();
      const Rack v = sample_endpoint();
      if (u != v) return Request::make(u, v);
    }
  };

  std::vector<Request> candidates;
  if (hubs.empty()) {
    candidates = sample_distinct_pairs(num_racks, num_candidates, rng);
  } else {
    candidates.reserve(num_candidates);
    FlatSet seen(num_candidates);
    std::size_t attempts = 0;
    while (candidates.size() < num_candidates) {
      const Request r = sample_candidate();
      // Hub-biased sampling can exhaust the hub-pair universe; give up on
      // distinctness after enough rejections and allow duplicates (they
      // merely deepen the skew).
      if (seen.insert(pair_key(r)) || ++attempts > 50 * num_candidates) {
        candidates.push_back(r);
      }
    }
  }
  const ZipfSampler zipf(num_candidates, params.zipf_skew);
  // P(burst continues) chosen so the mean geometric length matches.
  const double p_end = 1.0 / params.mean_burst_length;

  struct Flow {
    Request pair;
    std::size_t remaining;
  };
  std::vector<Flow> active;
  active.reserve(params.max_active_flows);

  auto spawn_flow = [&] {
    const Request pair = candidates[zipf(rng)];
    const std::size_t len = 1 + sample_geometric(rng, p_end);
    active.push_back({pair, len});
  };

  Trace t(num_racks, "flow_pool");
  t.reserve(num_requests);
  std::size_t emitted = 0;
  while (emitted < num_requests) {
    // Working-set drift: refresh part of the candidate set periodically.
    if (params.drift_period > 0 && emitted > 0 &&
        emitted % params.drift_period == 0) {
      const std::size_t refresh = static_cast<std::size_t>(
          params.drift_fraction * static_cast<double>(num_candidates));
      for (std::size_t r = 0; r < refresh; ++r) {
        const std::size_t slot = rng.next_below(num_candidates);
        candidates[slot] = hubs.empty() ? random_pair(num_racks, rng)
                                        : sample_candidate();
      }
    }

    if (params.noise_fraction > 0.0 &&
        rng.next_bool(params.noise_fraction)) {
      t.push_back(random_pair(num_racks, rng));
      ++emitted;
      continue;
    }
    if (active.empty() ||
        (active.size() < params.max_active_flows &&
         rng.next_bool(params.new_flow_prob))) {
      spawn_flow();
    }
    const std::size_t i = rng.next_below(active.size());
    t.push_back(active[i].pair);
    ++emitted;
    if (--active[i].remaining == 0) {
      active[i] = active.back();
      active.pop_back();
    }
  }
  return t;
}

Trace generate_elephant_mice(std::size_t num_racks, std::size_t num_requests,
                             std::size_t num_elephants, double elephant_share,
                             double mean_run_length, Xoshiro256& rng) {
  RDCN_ASSERT(num_racks >= 2);
  RDCN_ASSERT(num_elephants >= 1);
  RDCN_ASSERT(elephant_share >= 0.0 && elephant_share <= 1.0);
  RDCN_ASSERT(mean_run_length >= 1.0);
  const std::vector<Request> elephants =
      sample_distinct_pairs(num_racks, num_elephants, rng);
  const double p_end = 1.0 / mean_run_length;

  Trace t(num_racks, "elephant_mice");
  t.reserve(num_requests);
  std::size_t emitted = 0;
  while (emitted < num_requests) {
    if (rng.next_bool(elephant_share)) {
      // Elephant run: one heavy pair, geometric run length.
      const Request e = elephants[rng.next_below(num_elephants)];
      std::size_t run = 1 + sample_geometric(rng, p_end);
      while (run-- > 0 && emitted < num_requests) {
        t.push_back(e);
        ++emitted;
      }
    } else {
      t.push_back(random_pair(num_racks, rng));
      ++emitted;
    }
  }
  return t;
}

Trace generate_round_robin_star(std::size_t num_racks,
                                std::size_t num_requests, std::size_t k) {
  RDCN_ASSERT(num_racks >= k + 2);
  RDCN_ASSERT(k >= 1);
  Trace t(num_racks, "round_robin_star");
  t.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    const Rack other = static_cast<Rack>(1 + (i % (k + 1)));
    t.push_back(Request::make(0, other));
  }
  return t;
}

}  // namespace rdcn::trace
