#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace rdcn::trace {

void write_csv(const Trace& trace, std::ostream& out) {
  out << "# racks=" << trace.num_racks() << " name=" << trace.name() << "\n";
  for (const Request& r : trace) out << r.u << "," << r.v << "\n";
}

void write_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  RDCN_ASSERT_MSG(f.good(), "cannot open trace file for writing");
  write_csv(trace, f);
}

Trace read_csv(std::istream& in) {
  std::string line;
  std::size_t num_racks = 0;
  std::string name = "imported";
  std::vector<Request> requests;
  std::size_t max_rack = 0;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Parse "# racks=<n> name=<name>".
      std::istringstream hdr(line.substr(1));
      std::string tok;
      while (hdr >> tok) {
        if (tok.rfind("racks=", 0) == 0)
          num_racks = static_cast<std::size_t>(std::stoull(tok.substr(6)));
        else if (tok.rfind("name=", 0) == 0)
          name = tok.substr(5);
      }
      continue;
    }
    const std::size_t comma = line.find(',');
    RDCN_ASSERT_MSG(comma != std::string::npos, "malformed trace line");
    const auto u = static_cast<Rack>(std::stoul(line.substr(0, comma)));
    const auto v = static_cast<Rack>(std::stoul(line.substr(comma + 1)));
    RDCN_ASSERT_MSG(u != v, "trace contains a self-loop request");
    requests.push_back(Request::make(u, v));
    max_rack = std::max<std::size_t>(max_rack, std::max(u, v));
  }
  if (num_racks == 0) num_racks = max_rack + 1;
  RDCN_ASSERT_MSG(num_racks > max_rack, "rack id exceeds declared universe");

  Trace t(num_racks, name);
  t.reserve(requests.size());
  for (const Request& r : requests) t.push_back(r);
  return t;
}

Trace read_csv_file(const std::string& path) {
  std::ifstream f(path);
  RDCN_ASSERT_MSG(f.good(), "cannot open trace file for reading");
  return read_csv(f);
}

}  // namespace rdcn::trace
