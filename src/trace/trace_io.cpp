#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/param_map.hpp"

namespace rdcn::trace {

void write_csv(const Trace& trace, std::ostream& out) {
  out << "# racks=" << trace.num_racks() << " name=" << trace.name() << "\n";
  for (const Request& r : trace) out << r.u << "," << r.v << "\n";
}

void write_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  RDCN_ASSERT_MSG(f.good(), "cannot open trace file for writing");
  write_csv(trace, f);
}

namespace {

[[noreturn]] void parse_error(const std::string& source, std::size_t line_no,
                              const std::string& what) {
  throw SpecError(source + ":" + std::to_string(line_no) + ": " + what);
}

/// Checked unsigned parse: the whole field must be digits (std::stoul-style
/// trailing garbage, signs, and empty fields are errors, not truncations)
/// and the value must fit `max`.
std::uint64_t parse_field(std::string_view field, const char* what,
                          std::uint64_t max, const std::string& source,
                          std::size_t line_no) {
  std::uint64_t out = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec == std::errc::result_out_of_range || (ec == std::errc{} && out > max))
    parse_error(source, line_no,
                std::string(what) + " '" + std::string(field) +
                    "' exceeds the supported maximum of " +
                    std::to_string(max));
  if (ec != std::errc{} || ptr != end)
    parse_error(source, line_no,
                std::string("cannot parse ") + what + " '" +
                    std::string(field) + "' as an unsigned integer");
  return out;
}

}  // namespace

Trace read_csv(std::istream& in, const std::string& source) {
  constexpr std::uint64_t kMaxRack = std::numeric_limits<Rack>::max();

  std::string line;
  std::size_t line_no = 0;
  std::size_t num_racks = 0;
  std::string name = "imported";
  std::vector<Request> requests;
  std::size_t max_rack = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Parse "# racks=<n> name=<name>".
      std::istringstream hdr(line.substr(1));
      std::string tok;
      while (hdr >> tok) {
        if (tok.rfind("racks=", 0) == 0)
          num_racks = static_cast<std::size_t>(parse_field(
              std::string_view(tok).substr(6), "header racks count",
              kMaxRack + 1, source, line_no));
        else if (tok.rfind("name=", 0) == 0)
          name = tok.substr(5);
      }
      continue;
    }
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos)
      parse_error(source, line_no,
                  "malformed request line '" + line + "' (want 'src,dst')");
    const std::string_view text(line);
    const auto u = static_cast<Rack>(parse_field(
        text.substr(0, comma), "source rack", kMaxRack, source, line_no));
    const auto v = static_cast<Rack>(parse_field(
        text.substr(comma + 1), "destination rack", kMaxRack, source,
        line_no));
    if (u == v)
      parse_error(source, line_no,
                  "self-loop request " + std::to_string(u) + "," +
                      std::to_string(v));
    requests.push_back(Request::make(u, v));
    max_rack = std::max<std::size_t>(max_rack, std::max(u, v));
  }
  if (num_racks == 0) num_racks = requests.empty() ? 1 : max_rack + 1;
  if (num_racks <= max_rack)
    throw SpecError(source + ": rack id " + std::to_string(max_rack) +
                    " exceeds the declared universe of " +
                    std::to_string(num_racks) + " racks");

  Trace t(num_racks, name);
  t.reserve(requests.size());
  for (const Request& r : requests) t.push_back(r);
  return t;
}

Trace read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good())
    throw SpecError("cannot open trace file '" + path + "' for reading");
  return read_csv(f, path);
}

}  // namespace rdcn::trace
