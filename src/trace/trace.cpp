#include "trace/trace.hpp"

#include "common/flat_hash.hpp"

namespace rdcn::trace {

Trace Trace::prefix(std::size_t n) const {
  Trace t(num_racks_, name_ + "_prefix");
  const std::size_t m = n < u_.size() ? n : u_.size();
  t.u_.assign(u_.begin(), u_.begin() + static_cast<std::ptrdiff_t>(m));
  t.v_.assign(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(m));
  return t;
}

std::size_t Trace::num_distinct_pairs() const {
  FlatSet seen(u_.size());
  for (std::size_t i = 0; i < u_.size(); ++i)
    seen.insert(pair_key(u_[i], v_[i]));
  return seen.size();
}

}  // namespace rdcn::trace
