#include "trace/trace.hpp"

#include "common/flat_hash.hpp"

namespace rdcn::trace {

Trace Trace::prefix(std::size_t n) const {
  Trace t(num_racks_, name_ + "_prefix");
  const std::size_t m = n < requests_.size() ? n : requests_.size();
  t.requests_.assign(requests_.begin(),
                     requests_.begin() + static_cast<std::ptrdiff_t>(m));
  return t;
}

std::size_t Trace::num_distinct_pairs() const {
  FlatSet seen(requests_.size());
  for (const Request& r : requests_) seen.insert(pair_key(r));
  return seen.size();
}

}  // namespace rdcn::trace
